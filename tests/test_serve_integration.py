"""End-to-end tests of the real serving service (``repro.serve``).

The acceptance contract of the serving PR:

* the service boots **in-process** and replays a seeded 10k-request
  bursty trace on the virtual clock;
* (a) every admitted response is **bit-identical** to direct engine
  evaluation of the same (algorithm, layer, hardware) cell;
* (b) admitted p99 latency stays within the configured SLO at 2x
  capacity, with every shed request accounted for
  (``offered == admitted + shed``);
* (c) under a ``REPRO_FAULTS`` predictor-error plan the circuit breaker
  opens and the safe-fallback path keeps the error rate at zero;
* all of it bit-deterministic across two consecutive runs.

The transport (NDJSON + HTTP over asyncio) is exercised against a real
unix socket at the bottom of the file.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import faults
from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm, layer_cycles
from repro.engine.cache import MemoCache
from repro.engine.executor import EvaluationEngine
from repro.serve import (
    AsyncServeServer,
    PredictionService,
    ServeApp,
    ServeRequest,
    TraceSpec,
    default_workload,
    generate_trace,
    replay,
    stats_dict,
)

pytestmark = pytest.mark.slow  # the CI tier-1 job skips the 10k replays


# ---------------------------------------------------------------------- #
# shared, computed once per module
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def workload():
    return default_workload()


@pytest.fixture(scope="module")
def service_times(workload):
    """Direct per-pair service times for every candidate algorithm."""
    out = {}
    for spec, hw in workload:
        for name in ALGORITHM_NAMES:
            record = layer_cycles(name, spec, hw, fallback=True)
            out[(name, spec, hw)] = record.seconds(hw.freq_ghz)
    return out


def fresh_service(selector, tmp_path=None, **kwargs):
    cache = MemoCache(
        sqlite_path=tmp_path / "serve-cache.db" if tmp_path else None
    )
    return PredictionService(
        engine=EvaluationEngine(cache=cache), selector=selector, **kwargs
    )


def direct_cycles(response, request):
    """The bit-exact direct evaluation the response must reproduce."""
    record = layer_cycles(
        response.algorithm, request.spec, request.hw, fallback=True
    )
    return record.cycles, record.seconds(request.hw.freq_ghz), record.dram_bytes


# ---------------------------------------------------------------------- #
# the acceptance run: 10k bursty requests, virtual clock
# ---------------------------------------------------------------------- #
class TestBursty10k:
    SERVERS = 8
    QUEUE_LIMIT = 8
    MAX_BATCH = 64
    MAX_WAIT_S = 0.002
    N = 10_000
    SEED = 20240812

    def _slo_s(self, service_times) -> float:
        # Admission control's guarantee: an admitted request waits behind
        # at most QUEUE_LIMIT requests, each bounded by the slowest cell
        # in the workload, plus one micro-batch window.  A conservative
        # (single-server) bound; the 8 replicas only improve on it.
        worst = max(service_times.values())
        return self.MAX_WAIT_S + (self.QUEUE_LIMIT + 1) * worst

    def _trace(self, workload, service_times):
        # offered load = 2x the fleet's saturation throughput on the
        # safe algorithm's mean service time
        mean_safe = sum(
            service_times[("im2col_gemm6", spec, hw)]
            for spec, hw in workload
        ) / len(workload)
        rate = 2.0 * self.SERVERS / mean_safe
        return generate_trace(
            TraceSpec(
                pattern="bursty", n_requests=self.N, rate_rps=rate,
                seed=self.SEED, burst_factor=4.0,
            ),
            workload,
        )

    def _replay(self, trace, selector, tmp_path, service_times):
        service = fresh_service(selector, tmp_path)
        result = replay(
            service, trace,
            servers=self.SERVERS, queue_limit=self.QUEUE_LIMIT,
            slo_s=self._slo_s(service_times),
            max_batch=self.MAX_BATCH, max_wait_s=self.MAX_WAIT_S,
        )
        return service, result

    def test_parity_slo_shedding_and_determinism(
        self, trained_selector, tmp_path, workload, service_times
    ):
        trace = self._trace(workload, service_times)
        by_id = {t.request.id: t.request for t in trace}
        service, result = self._replay(
            trace, trained_selector, tmp_path, service_times
        )
        stats = result.stats

        # -- conservation: every offered request is admitted or shed ----
        assert stats.offered == self.N
        assert stats.n_requests + stats.shed == self.N
        assert stats.n_requests == len(result.responses)
        assert stats.shed == len(result.shed_ids)
        assert stats.shed > 0, "2x-capacity overload must shed"

        # -- (a) bit-identical to direct engine evaluation --------------
        assert result.responses, "overload must still admit requests"
        memo = {}
        for response in result.responses:
            assert response.status == "ok"
            request = by_id[response.id]
            key = (response.algorithm, request.spec, request.hw)
            if key not in memo:
                memo[key] = direct_cycles(response, request)
            cycles, seconds, dram = memo[key]
            assert response.cycles == cycles  # bit-identical, no tolerance
            assert response.seconds == seconds
            assert response.dram_bytes == dram

        # -- (b) admitted p99 within the configured SLO -----------------
        slo = self._slo_s(service_times)
        assert stats.slo_s == slo
        assert stats.p99 <= slo
        # latency accounting is causal: nonnegative waits and services
        assert all(r.queue_wait >= 0 and r.latency >= 0 for r in stats.records)

        # -- deterministic across two consecutive runs ------------------
        service2, result2 = self._replay(
            trace, trained_selector, tmp_path, service_times
        )
        assert [r.to_json() for r in result.responses] == [
            r.to_json() for r in result2.responses
        ]
        assert result.shed_ids == result2.shed_ids
        assert stats_dict(result.stats) == stats_dict(result2.stats)
        # warm SQLite tier: second run served from cache, same bits
        assert service2.engine.cache.stats.sqlite_hits > 0

    @pytest.mark.chaos
    def test_predictor_error_plan_opens_breaker_zero_errors(
        self, trained_selector, tmp_path, workload, service_times
    ):
        trace = self._trace(workload, service_times)[:2000]
        with faults.inject("seed=7,serving.predictor_error=0.5"):
            service, result = self._replay(
                trace, trained_selector, tmp_path, service_times
            )
        # (c) breaker opened, fallback path took over, zero errors
        assert service.breaker.open
        assert result.service_snapshot["circuit_open"]
        assert all(r.status == "ok" for r in result.responses)
        assert result.stats.fallbacks > 0
        assert result.stats.fallbacks == result.service_snapshot[
            "fallback_served"
        ]
        # every fallback response used the safe algorithm and still
        # prices bit-identically to the direct evaluation
        by_id = {t.request.id: t.request for t in trace}
        for response in result.responses:
            if response.served_by == "fallback":
                assert response.algorithm == "im2col_gemm6"
                cycles, _, _ = direct_cycles(response, by_id[response.id])
                assert response.cycles == cycles
        # deterministic under the same plan
        with faults.inject("seed=7,serving.predictor_error=0.5"):
            _, result2 = self._replay(
                trace, trained_selector, tmp_path, service_times
            )
        assert [r.to_json() for r in result.responses] == [
            r.to_json() for r in result2.responses
        ]

    def test_oracle_fallback_beats_or_matches_safe(
        self, trained_selector, workload, service_times
    ):
        """Engine-backed oracle fallback picks the cycle-optimal algorithm."""
        service = fresh_service(None, fallback_policy="oracle")
        spec, hw = workload[0]
        response = service.handle(ServeRequest(spec=spec, hw=hw, id="o"))
        assert response.served_by == "fallback"
        best = min(
            service_times[(n, spec, hw)]
            for n in ALGORITHM_NAMES
            if get_algorithm(n).applicable(spec)
        )
        assert response.seconds == best


# ---------------------------------------------------------------------- #
# diurnal pattern: deterministic and conserving too
# ---------------------------------------------------------------------- #
def test_diurnal_trace_replay_is_deterministic(trained_selector, workload):
    trace = generate_trace(
        TraceSpec(pattern="diurnal", n_requests=1000, rate_rps=400.0, seed=3),
        workload,
    )
    a = replay(fresh_service(trained_selector), trace, servers=4,
               queue_limit=16, slo_s=1.0, max_batch=32, max_wait_s=0.001)
    b = replay(fresh_service(trained_selector), trace, servers=4,
               queue_limit=16, slo_s=1.0, max_batch=32, max_wait_s=0.001)
    assert a.stats.offered == 1000
    assert [r.to_json() for r in a.responses] == [
        r.to_json() for r in b.responses
    ]
    assert stats_dict(a.stats) == stats_dict(b.stats)


# ---------------------------------------------------------------------- #
# the live transport: NDJSON + HTTP over a real unix socket
# ---------------------------------------------------------------------- #
class TestAsyncTransport:
    def _request_payload(self, req_id="t-1"):
        return {
            "id": req_id,
            "layer": {"ic": 64, "oc": 64, "ih": 56, "iw": 56,
                      "kh": 3, "kw": 3, "stride": 1},
            "hw": {"vlen_bits": 512, "l2_mib": 1.0},
        }

    def _boot(self, tmp_path, **app_kwargs):
        service = PredictionService(engine=EvaluationEngine())
        app = ServeApp(service, max_batch=8, max_wait_s=0.002, **app_kwargs)
        return AsyncServeServer(app, unix_path=tmp_path / "serve.sock")

    def test_ndjson_roundtrip_parity_and_batching(self, tmp_path):
        async def scenario():
            server = self._boot(tmp_path, queue_limit=64)
            await server.start()
            try:
                reader, writer = await asyncio.open_unix_connection(
                    str(tmp_path / "serve.sock")
                )
                for i in range(3):  # pipelined: lands in one micro-batch
                    writer.write(
                        (json.dumps(self._request_payload(f"t-{i}")) + "\n")
                        .encode()
                    )
                writer.write(b'{"not": "a request"}\n')
                await writer.drain()
                writer.write_eof()
                lines = []
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    lines.append(json.loads(line))
                writer.close()
                return lines, server.app
            finally:
                await server.stop()

        lines, app = asyncio.run(scenario())
        by_id = {line["id"]: line for line in lines}
        assert by_id[""]["status"] == "error"
        request = ServeRequest.from_dict(self._request_payload())
        direct = layer_cycles(
            by_id["t-0"]["algorithm"], request.spec, request.hw, fallback=True
        )
        for i in range(3):
            assert by_id[f"t-{i}"]["status"] == "ok"
            assert by_id[f"t-{i}"]["cycles"] == direct.cycles
        assert app.ledger.n_requests == 3
        assert app.batcher.batches_flushed >= 1

    def test_http_select_health_and_stats(self, tmp_path):
        async def scenario():
            server = self._boot(tmp_path, queue_limit=64, slo_s=5.0)
            await server.start()
            sock = str(tmp_path / "serve.sock")

            async def http(raw: bytes) -> tuple[int, dict]:
                reader, writer = await asyncio.open_unix_connection(sock)
                writer.write(raw)
                await writer.drain()
                data = await reader.read()
                writer.close()
                head, body = data.decode().split("\r\n\r\n", 1)
                return int(head.split()[1]), json.loads(body)

            try:
                body = json.dumps(self._request_payload("h-1")).encode()
                post = (
                    b"POST /v1/select HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                )
                status, selected = await http(post)
                s2, health = await http(b"GET /v1/health HTTP/1.1\r\n\r\n")
                s3, stats = await http(b"GET /v1/stats HTTP/1.1\r\n\r\n")
                s4, missing = await http(b"GET /nope HTTP/1.1\r\n\r\n")
                return (status, selected), (s2, health), (s3, stats), (s4, missing)
            finally:
                await server.stop()

        (status, selected), (s2, health), (s3, stats), (s4, missing) = (
            asyncio.run(scenario())
        )
        assert status == 200 and selected["status"] == "ok"
        request = ServeRequest.from_dict(self._request_payload())
        direct = layer_cycles(
            selected["algorithm"], request.spec, request.hw, fallback=True
        )
        assert selected["cycles"] == direct.cycles
        assert s2 == 200 and health["status"] == "ok"
        assert s3 == 200 and stats["serving"]["requests"] == 1
        assert stats["serving"]["offered"] == 1
        assert s4 == 404

    def test_queue_limit_zero_sheds_everything(self, tmp_path):
        async def scenario():
            server = self._boot(tmp_path, queue_limit=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_unix_connection(
                    str(tmp_path / "serve.sock")
                )
                writer.write(
                    (json.dumps(self._request_payload("s-1")) + "\n").encode()
                )
                await writer.drain()
                writer.write_eof()
                line = await reader.readline()
                writer.close()
                return json.loads(line), server.app.stats()
            finally:
                await server.stop()

        response, stats = asyncio.run(scenario())
        assert response["status"] == "shed"
        assert stats.shed == 1 and stats.n_requests == 0
        assert stats.offered == 1
