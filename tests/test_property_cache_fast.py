"""Hypothesis properties: set-partitioned cache replay == sequential model.

Random line-address streams (mixed loads/stores, many sets, tiny caches so
evictions are frequent) must produce identical hits, misses, writebacks and
victim streams — and leave identical cache state behind — whether replayed
access by access through :meth:`SetAssociativeCache.access` /
:meth:`CacheHierarchy.access_line` or in one batch through
:mod:`repro.simulator.cache_fast`.  Both hierarchy modes are covered.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.trace import InstructionTrace
from repro.simulator import replay_backend as rb
from repro.simulator._compiled import HAVE_NUMBA
from repro.simulator.cache import CacheHierarchy, SetAssociativeCache
from repro.simulator.cache_fast import replay_line_stream, simulate_cache_stream

LINE = 64

#: simulate_cache_stream dispatch variants every property must hold under.
#: (sharded runs in-process — use_pool=False — so hypothesis's example
#: loop doesn't pay process-pool startup per example.)
REPLAY_VARIANTS = [
    pytest.param(dict(backend="numpy"), id="numpy"),
    pytest.param(
        dict(backend="numpy", workers=3, use_pool=False), id="sharded"
    ),
    pytest.param(
        dict(backend="compiled"),
        id="compiled",
        marks=pytest.mark.skipif(not HAVE_NUMBA, reason="Numba not installed"),
    ),
]

# (line id, is_store) streams over a small address range so tiny caches
# see plenty of conflict misses and dirty evictions
stream_strategy = st.lists(
    st.tuples(st.integers(0, 47), st.booleans()), min_size=0, max_size=250
)

geometry_strategy = st.tuples(
    st.sampled_from([1, 2, 4]),  # associativity
    st.sampled_from([1, 2, 4, 8]),  # sets
)


def _caches(assoc: int, sets: int) -> tuple[SetAssociativeCache, SetAssociativeCache]:
    size = sets * assoc * LINE
    return (
        SetAssociativeCache("C", size, assoc, LINE),
        SetAssociativeCache("C", size, assoc, LINE),
    )


def _assert_cache_state_equal(a: SetAssociativeCache, b: SetAssociativeCache):
    assert np.array_equal(a._tags, b._tags)
    assert np.array_equal(a._dirty, b._dirty)
    assert np.array_equal(a._lru, b._lru)
    assert a._tick == b._tick
    assert a.stats == b.stats


@pytest.mark.parametrize("replay_kwargs", REPLAY_VARIANTS)
@given(stream=stream_strategy, geometry=geometry_strategy)
@settings(max_examples=120, deadline=None)
def test_single_level_stream_equivalence(replay_kwargs, stream, geometry):
    ref, fast = _caches(*geometry)
    lines = np.array([lid * LINE for lid, _ in stream], dtype=np.int64)
    stores = np.array([s for _, s in stream], dtype=bool)
    expected = [ref.access(int(a), bool(s)) for a, s in zip(lines, stores)]
    hits, wbs, victims = simulate_cache_stream(
        fast, lines, stores, **replay_kwargs
    )
    for (ref_hit, ref_victim), hit, wb, victim in zip(
        expected, hits, wbs, victims
    ):
        assert ref_hit == bool(hit)
        assert (ref_victim is not None) == bool(wb)
        if ref_victim is not None:
            assert ref_victim == int(victim)
    _assert_cache_state_equal(ref, fast)


@given(stream=stream_strategy, geometry=geometry_strategy)
@settings(max_examples=60, deadline=None)
def test_kernel_source_matches_sequential(stream, geometry):
    """The compiled backend's *Python source* replays exactly.

    Calls the kernel wrappers directly (not through the registry), so
    the code Numba compiles is property-tested even where Numba is not
    installed — the njit decorator only changes speed, not semantics.
    """
    ref, fast = _caches(*geometry)
    lines = np.array([lid * LINE for lid, _ in stream], dtype=np.int64)
    stores = np.array([s for _, s in stream], dtype=bool)
    expected = [ref.access(int(a), bool(s)) for a, s in zip(lines, stores)]
    n = lines.size
    sets = (lines // LINE) & (fast.num_sets - 1)
    hits, wbs, victims = rb._replay_sets_compiled(
        fast._tags, fast._dirty, fast._lru, sets, lines, stores,
        np.arange(n, dtype=np.int64), fast._tick,
    )
    for (ref_hit, ref_victim), hit, wb, victim in zip(
        expected, hits, wbs, victims
    ):
        assert ref_hit == bool(hit)
        assert (ref_victim is not None) == bool(wb)
        if ref_victim is not None:
            assert ref_victim == int(victim)
    # the raw kernel mutates state arrays only; tick/stats are the
    # caller's job (simulate_cache_stream), so compare arrays directly
    assert np.array_equal(ref._tags, fast._tags)
    assert np.array_equal(ref._dirty, fast._dirty)
    assert np.array_equal(ref._lru, fast._lru)


@given(
    stream=stream_strategy,
    geometry=geometry_strategy,
    split=st.integers(0, 250),
)
@settings(max_examples=60, deadline=None)
def test_split_batches_compose_like_one(stream, geometry, split):
    """Replaying [a|b] as two batches equals one batch — warm-start parity."""
    one, two = _caches(*geometry)
    lines = np.array([lid * LINE for lid, _ in stream], dtype=np.int64)
    stores = np.array([s for _, s in stream], dtype=bool)
    cut = min(split, lines.size)
    h1, w1, v1 = simulate_cache_stream(one, lines, stores)
    ha, wa, va = simulate_cache_stream(two, lines[:cut], stores[:cut])
    hb, wb, vb = simulate_cache_stream(two, lines[cut:], stores[cut:])
    assert np.array_equal(h1, np.concatenate([ha, hb]))
    assert np.array_equal(w1, np.concatenate([wa, wb]))
    assert np.array_equal(v1, np.concatenate([va, vb]))
    _assert_cache_state_equal(one, two)


memop_strategy = st.tuples(
    st.integers(0, 40),  # base line id
    st.integers(0, 33),  # vl (0 allowed: empty op)
    st.sampled_from([4, -4, 8, 20, 256]),  # byte stride
    st.booleans(),  # is_store
    st.booleans(),  # indexed gather/scatter?
)


def _hierarchy(vector_at_l2: bool) -> CacheHierarchy:
    l1 = SetAssociativeCache("L1", 4 * 2 * LINE, 2, LINE)
    l2 = SetAssociativeCache("L2", 8 * 4 * LINE, 4, LINE)
    return CacheHierarchy(l1, l2, vector_at_l2=vector_at_l2)


@given(
    ops=st.lists(memop_strategy, min_size=0, max_size=40),
    vector_at_l2=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_hierarchy_memop_replay_equivalence(ops, vector_at_l2):
    trace = InstructionTrace()
    rng = np.random.default_rng(len(ops))
    for base_id, vl, stride, is_store, indexed in ops:
        name = ("vsuxei" if is_store else "vluxei") if indexed else (
            "vse" if is_store else "vle"
        )
        indices = (
            tuple(int(v) for v in rng.integers(0, 4096, size=vl))
            if indexed
            else None
        )
        trace.emit_memory(
            name, base_id * LINE + 4, 4, vl, stride, is_store, indices=indices
        )
    ref = _hierarchy(vector_at_l2)
    fast = _hierarchy(vector_at_l2)
    mem_ops = list(trace)
    expected = [ref.access_memop(op) for op in mem_ops]
    mem = trace.memory_columns()
    lines, op_ids = trace.memory_line_stream(fast.line_bytes, rows=mem.rows)
    l1_m, l2_m = replay_line_stream(
        fast, lines, mem.is_store[op_ids], op_ids, len(mem_ops)
    )
    assert [(int(a), int(b)) for a, b in zip(l1_m, l2_m)] == expected
    _assert_cache_state_equal(ref.l1, fast.l1)
    _assert_cache_state_equal(ref.l2, fast.l2)
    assert ref.dram_lines == fast.dram_lines
    assert ref.dram_writeback_lines == fast.dram_writeback_lines


@pytest.mark.parametrize("replay_kwargs", REPLAY_VARIANTS)
def test_empty_stream_is_a_noop(replay_kwargs):
    ref, fast = _caches(2, 4)
    hits, wbs, victims = simulate_cache_stream(
        fast,
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=bool),
        **replay_kwargs,
    )
    assert hits.size == wbs.size == victims.size == 0
    _assert_cache_state_equal(ref, fast)


# --------------------------------------------------------------------- #
# fold kernels: compiled source == numpy backend, bit for bit
# --------------------------------------------------------------------- #
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 3000), st.sampled_from([8, 16, 32, 64])),
        min_size=0,
        max_size=60,
    ),
    datapath=st.sampled_from([2.0, 8.0, 16.0, 64.0]),
)
@settings(max_examples=80, deadline=None)
def test_vector_fold_kernel_matches_numpy(rows, datapath):
    vl = np.array([v for v, _ in rows], dtype=np.int64)
    sew = np.array([s for _, s in rows], dtype=np.int64)
    a = rb._vector_cost_fold_numpy(vl, sew, datapath, 1.0)
    b = rb._vector_cost_fold_compiled(vl, sew, datapath, 1.0)
    assert a == b  # bit-exact float equality, not approx


@given(
    rows=st.lists(
        st.tuples(
            st.integers(0, 200),  # vl
            st.sampled_from([4, 8]),  # elem_bytes
            st.sampled_from([4, -4, 8, 20, 256]),  # stride
            st.booleans(),  # indexed
            st.integers(0, 50),  # l1 misses
            st.integers(0, 50),  # l2 misses
        ),
        min_size=0,
        max_size=40,
    ),
    vector_at_l2=st.booleans(),
    prefetch=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_memory_fold_kernel_matches_numpy(rows, vector_at_l2, prefetch):
    cols = (
        np.array([r[i] for r in rows], dtype=np.int64) for i in range(6)
    )
    vl, elem_bytes, stride, indexed, l1_m, l2_m = cols
    indexed = indexed.astype(bool)
    params = rb.MemoryCostParams(
        datapath=16.0,
        nonunit_factor=4.0,
        startup_cycles=2.0,
        l2_latency=20.0,
        mlp=4.0,
        dram_latency=120.0,
        prefetch_factor=4.0 if prefetch else 1.0,
        line_bytes=LINE,
        bytes_per_cycle=16.0,
        vector_at_l2=vector_at_l2,
    )
    a = rb._memory_cost_fold_numpy(
        vl, elem_bytes, stride, indexed, l1_m, l2_m, params
    )
    b = rb._memory_cost_fold_compiled(
        vl, elem_bytes, stride, indexed, l1_m, l2_m, params
    )
    assert a == b  # bit-exact float equality, not approx


# --------------------------------------------------------------------- #
# trace spill round trip
# --------------------------------------------------------------------- #
@given(
    ops=st.lists(memop_strategy, min_size=0, max_size=25),
    extras=st.integers(0, 3),
    mmap=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_spill_round_trip_preserves_trace(ops, extras, mmap):
    """save → load is lossless: stats, columns, line stream, events."""
    trace = InstructionTrace()
    rng = np.random.default_rng(len(ops) + extras)
    for base_id, vl, stride, is_store, indexed in ops:
        name = ("vsuxei" if is_store else "vluxei") if indexed else (
            "vse" if is_store else "vle"
        )
        indices = (
            tuple(int(v) for v in rng.integers(0, 4096, size=vl))
            if indexed
            else None
        )
        trace.emit_memory(
            name, base_id * LINE + 4, 4, vl, stride, is_store, indices=indices
        )
    for _ in range(extras):  # non-memory rows survive the trip too
        trace.emit_vector("vfmacc", 16, 32)
        trace.emit_scalar("addi", 2)
    with tempfile.TemporaryDirectory() as tmp:
        path = trace.save(Path(tmp) / "trace")
        loaded = InstructionTrace.load(path, mmap=mmap)
        assert len(loaded) == len(trace)
        assert loaded.stats == trace.stats
        lines_a, ops_a = trace.memory_line_stream(LINE)
        lines_b, ops_b = loaded.memory_line_stream(LINE)
        assert np.array_equal(lines_a, lines_b)
        assert np.array_equal(ops_a, ops_b)
        ca, cb = trace.columns(), loaded.columns()
        for field in ("kind", "op", "vl", "aux", "base", "stride", "store"):
            assert np.array_equal(getattr(ca, field), getattr(cb, field))
        assert trace._indices == loaded._indices
        assert list(trace.events) == list(loaded.events)
