"""Tests for the auxiliary Darknet kernels (fill/copy/bias/BN/activation)."""

import numpy as np
import pytest

from repro.algorithms.registry import layer_cycles
from repro.errors import ShapeError
from repro.isa import VectorMachine
from repro.nn.aux_kernels import (
    add_bias,
    aux_phases,
    batchnorm_forward,
    batchnorm_vectorized,
    copy_cpu,
    copy_vectorized,
    fill_cpu,
    fill_vectorized,
    full_layer_phases,
    leaky_activate_vectorized,
    normalize_cpu,
    scale_bias,
)
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig


class TestFunctional:
    def test_fill(self):
        np.testing.assert_array_equal(fill_cpu(5, 2.0), np.full(5, 2.0))

    def test_copy_is_independent(self, rng):
        x = rng.standard_normal(10).astype(np.float32)
        y = copy_cpu(x)
        y[0] = 99.0
        assert x[0] != 99.0

    def test_add_bias(self, rng):
        x = rng.standard_normal((3, 2, 2)).astype(np.float32)
        b = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        out = add_bias(x, b)
        np.testing.assert_allclose(out[1], x[1] + 2.0)

    def test_scale_bias(self, rng):
        x = rng.standard_normal((2, 2, 2)).astype(np.float32)
        out = scale_bias(x, np.array([2.0, 0.5], dtype=np.float32))
        np.testing.assert_allclose(out[0], 2 * x[0])

    def test_normalize_zero_mean_unit_var(self, rng):
        x = rng.standard_normal((1, 50, 50)).astype(np.float32)
        out = normalize_cpu(
            x, x.mean(axis=(1, 2)), x.var(axis=(1, 2))
        )
        assert abs(float(out.mean())) < 1e-3
        assert float(out.std()) == pytest.approx(1.0, abs=1e-2)

    def test_batchnorm_forward_composition(self, rng):
        x = rng.standard_normal((2, 3, 3)).astype(np.float32)
        mean = x.mean(axis=(1, 2))
        var = x.var(axis=(1, 2))
        s = np.array([2.0, 3.0], dtype=np.float32)
        b = np.array([-1.0, 1.0], dtype=np.float32)
        out = batchnorm_forward(x, mean, var, s, b)
        manual = add_bias(scale_bias(normalize_cpu(x, mean, var), s), b)
        np.testing.assert_allclose(out, manual)

    @pytest.mark.parametrize("fn", [add_bias, scale_bias])
    def test_shape_checks(self, fn, rng):
        with pytest.raises(ShapeError):
            fn(rng.standard_normal((2, 2, 2)).astype(np.float32),
               np.zeros(3, dtype=np.float32))


class TestVectorized:
    def test_fill(self):
        m = VectorMachine(512, trace=False)
        buf = m.alloc("b", 100)
        fill_vectorized(m, buf, 7.5)
        np.testing.assert_array_equal(buf.array, np.full(100, 7.5))

    def test_copy(self, rng):
        m = VectorMachine(512, trace=False)
        src = m.alloc_from("s", rng.standard_normal(77).astype(np.float32))
        dst = m.alloc("d", 77)
        copy_vectorized(m, src, dst)
        np.testing.assert_array_equal(dst.array, src.array)

    def test_batchnorm_matches_functional(self, rng):
        c, hw_sp = 4, 25
        x = rng.standard_normal((c, 5, 5)).astype(np.float32)
        mean = rng.standard_normal(c).astype(np.float32)
        var = rng.uniform(0.5, 2.0, c).astype(np.float32)
        s = rng.uniform(0.5, 2.0, c).astype(np.float32)
        b = rng.standard_normal(c).astype(np.float32)
        m = VectorMachine(512, trace=False)
        buf = m.alloc_from("x", x)
        batchnorm_vectorized(m, buf, c, mean, var, s, b)
        np.testing.assert_allclose(
            buf.array.reshape(c, 5, 5),
            batchnorm_forward(x, mean, var, s, b),
            atol=1e-4,
        )

    def test_batchnorm_rejects_ragged(self):
        m = VectorMachine(512, trace=False)
        buf = m.alloc("x", 10)
        with pytest.raises(ShapeError):
            batchnorm_vectorized(m, buf, 3, np.zeros(3), np.ones(3),
                                 np.ones(3), np.zeros(3))

    def test_leaky_activation(self, rng):
        x = rng.standard_normal(64).astype(np.float32)
        m = VectorMachine(512, trace=False)
        buf = m.alloc_from("x", x)
        leaky_activate_vectorized(m, buf)
        np.testing.assert_allclose(
            buf.array, np.where(x > 0, x, 0.1 * x), atol=1e-6
        )


class TestAuxPhases:
    HW = HardwareConfig.paper2_rvv(512, 1.0)

    def test_phase_names(self):
        spec = ConvSpec(ic=16, oc=32, ih=28, iw=28)
        names = [p.name for p in aux_phases(spec, self.HW)]
        assert names == ["fill_cpu", "batchnorm", "activate_array"]
        names = [p.name for p in aux_phases(spec, self.HW, batch_normalize=False)]
        assert "add_bias" in names

    def test_aux_is_small_fraction_of_layer(self):
        """Paper I: GEMM is 93.4% of the conv layer's compute — the aux
        kernels must stay a minor share for realistic layers."""
        spec = ConvSpec(ic=128, oc=256, ih=38, iw=38)
        model = AnalyticalTimingModel(self.HW)
        aux = model.evaluate("aux", aux_phases(spec, self.HW)).cycles
        gemm = layer_cycles("im2col_gemm6", spec, self.HW).cycles
        assert aux < 0.15 * gemm

    def test_full_layer_includes_both(self):
        spec = ConvSpec(ic=32, oc=64, ih=56, iw=56)
        phases = full_layer_phases(spec, self.HW, "im2col_gemm3")
        names = [p.name for p in phases]
        assert "gemm3" in names and "activate_array" in names

    def test_full_layer_winograd_star_fallback(self):
        spec = ConvSpec(ic=32, oc=64, ih=56, iw=56, kh=1, kw=1)
        names = [p.name for p in full_layer_phases(spec, self.HW, "winograd")]
        assert any(n.startswith("gemm6") for n in names)


class TestFusedEpilogue:
    HW = HardwareConfig.paper2_rvv(512, 1.0)

    def test_single_phase(self):
        spec = ConvSpec(ic=16, oc=32, ih=28, iw=28)
        fused = aux_phases(spec, self.HW, fused=True)
        assert len(fused) == 1 and fused[0].name == "fused_epilogue"

    def test_fused_always_cheaper(self):
        model = AnalyticalTimingModel(self.HW)
        for dims in (dict(ic=3, oc=32, ih=208, iw=208),
                     dict(ic=256, oc=512, ih=14, iw=14),
                     dict(ic=64, oc=64, ih=52, iw=52, kh=1, kw=1)):
            spec = ConvSpec(**dims)
            unfused = model.evaluate("u", aux_phases(spec, self.HW)).cycles
            fused = model.evaluate("f", aux_phases(spec, self.HW, fused=True)).cycles
            assert fused < unfused

    def test_fusion_ablation_study(self):
        from repro.experiments.cli import run_experiment

        r = run_experiment("ablation-fusion")
        speedups = r.data["speedups"]
        assert all(v >= 1.0 for v in speedups.values())
        # fusion matters most on the high-resolution first layer (cheap conv,
        # huge output) and least on the heavy stride-2 conv layers
        assert speedups[1] == max(speedups.values())
        assert min(speedups.values()) < 1.1
