"""Tests for the vector ISA substrate: types, registers, machine, trace."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IsaError, RegisterError, VectorLengthError
from repro.isa import (
    E8,
    E16,
    E32,
    E64,
    EpiIntrinsics,
    InstructionTrace,
    MemoryOp,
    ScalarOp,
    VectorMachine,
    VectorOp,
    VectorRegisterFile,
)
from repro.isa.types import element_type_for_bits, grant_vl, validate_vlen_bits


class TestTypes:
    def test_element_widths(self):
        assert E8.bytes == 1 and E16.bytes == 2 and E32.bytes == 4 and E64.bytes == 8

    def test_lookup_by_bits(self):
        assert element_type_for_bits(32) is E32
        with pytest.raises(IsaError, match="unsupported SEW"):
            element_type_for_bits(12)

    @pytest.mark.parametrize("vlen", [64, 512, 2048, 16384])
    def test_validate_vlen_accepts(self, vlen):
        validate_vlen_bits(vlen)

    @pytest.mark.parametrize("vlen", [0, 100, 32, 32768, -512])
    def test_validate_vlen_rejects(self, vlen):
        with pytest.raises(VectorLengthError):
            validate_vlen_bits(vlen)

    def test_grant_vl_caps_at_vlmax(self):
        assert grant_vl(100, E32, 512) == 16
        assert grant_vl(10, E32, 512) == 10
        assert grant_vl(0, E32, 512) == 0

    def test_grant_vl_depends_on_sew(self):
        assert grant_vl(1000, E64, 512) == 8
        assert grant_vl(1000, E8, 512) == 64

    def test_grant_vl_negative(self):
        with pytest.raises(VectorLengthError):
            grant_vl(-1, E32, 512)

    @given(req=st.integers(0, 10**6), vlen=st.sampled_from([128, 512, 4096, 16384]))
    @settings(max_examples=50)
    def test_grant_vl_properties(self, req, vlen):
        """vsetvl grant: never exceeds request or VLMAX; monotone in request."""
        got = grant_vl(req, E32, vlen)
        assert 0 <= got <= min(req, vlen // 32)
        assert grant_vl(req + 1, E32, vlen) >= got


class TestRegisterFile:
    def test_has_32_registers(self):
        rf = VectorRegisterFile(512)
        assert rf.num_regs == 32
        assert rf.vlen_bytes == 64

    def test_write_read_roundtrip(self):
        rf = VectorRegisterFile(512)
        data = np.arange(16, dtype=np.float32)
        rf.write(3, E32, data)
        np.testing.assert_array_equal(rf.read(3, E32, 16), data)

    def test_tail_undisturbed(self):
        rf = VectorRegisterFile(512)
        rf.write(0, E32, np.full(16, 7.0, dtype=np.float32))
        rf.write(0, E32, np.full(4, 1.0, dtype=np.float32))
        out = rf.read(0, E32, 16)
        assert (out[:4] == 1.0).all() and (out[4:] == 7.0).all()

    def test_sew_punning(self):
        rf = VectorRegisterFile(512)
        rf.write(1, E32, np.ones(16, dtype=np.float32))
        raw = rf.view(1, E8)
        assert raw.size == 64  # same bytes reinterpreted

    def test_bad_register_index(self):
        rf = VectorRegisterFile(512)
        with pytest.raises(RegisterError):
            rf.read(32, E32, 1)
        with pytest.raises(RegisterError):
            rf.view(-1, E32)

    def test_overlong_write_rejected(self):
        rf = VectorRegisterFile(128)
        with pytest.raises(RegisterError):
            rf.write(0, E32, np.zeros(5, dtype=np.float32))

    def test_clear(self):
        rf = VectorRegisterFile(128)
        rf.write(0, E32, np.ones(4, dtype=np.float32))
        rf.clear()
        assert (rf.read(0, E32, 4) == 0).all()


class TestMachine:
    def test_vsetvl_sets_state(self):
        m = VectorMachine(512)
        assert m.vsetvl(100) == 16
        assert m.vl == 16
        assert m.vsetvl(5) == 5

    def test_alloc_and_addresses(self):
        m = VectorMachine(512)
        a = m.alloc("a", 10)
        b = m.alloc("b", 10)
        assert a.base % 64 == 0 and b.base % 64 == 0
        assert b.base >= a.base + a.nbytes
        assert a.addr(3) == a.base + 12

    def test_alloc_duplicate_name(self):
        m = VectorMachine(512)
        m.alloc("a", 4)
        with pytest.raises(IsaError, match="already allocated"):
            m.alloc("a", 4)

    def test_buffer_lookup(self):
        m = VectorMachine(512)
        buf = m.alloc("x", 4)
        assert m.buffer("x") is buf
        with pytest.raises(IsaError, match="no buffer"):
            m.buffer("missing")

    def test_load_store_roundtrip(self):
        m = VectorMachine(512)
        src = m.alloc_from("src", np.arange(20, dtype=np.float32))
        dst = m.alloc("dst", 20)
        m.vsetvl(16)
        m.vload(0, src, 2)
        m.vstore(0, dst, 0)
        np.testing.assert_array_equal(dst.array[:16], np.arange(2, 18))

    def test_load_overrun_rejected(self):
        m = VectorMachine(512)
        src = m.alloc("src", 10)
        m.vsetvl(16)
        with pytest.raises(IsaError, match="overruns"):
            m.vload(0, src, 0)

    def test_strided_ops(self):
        m = VectorMachine(512)
        src = m.alloc_from("src", np.arange(64, dtype=np.float32))
        dst = m.alloc("dst", 64)
        m.vsetvl(8)
        m.vload_strided(1, src, 0, 4)
        np.testing.assert_array_equal(m.reg_values(1), np.arange(0, 32, 4))
        m.vstore_strided(1, dst, 0, 2)
        np.testing.assert_array_equal(dst.array[0:16:2], np.arange(0, 32, 4))

    def test_gather_scatter(self):
        m = VectorMachine(512)
        src = m.alloc_from("src", np.arange(32, dtype=np.float32))
        dst = m.alloc("dst", 32)
        m.vsetvl(4)
        idx = np.array([3, 1, 20, 7])
        m.vgather(2, src, idx)
        np.testing.assert_array_equal(m.reg_values(2), [3, 1, 20, 7])
        m.vscatter(2, dst, np.array([0, 2, 4, 6]))
        np.testing.assert_array_equal(dst.array[[0, 2, 4, 6]], [3, 1, 20, 7])

    def test_arithmetic_semantics(self):
        m = VectorMachine(256)
        m.vsetvl(8)
        a = m.alloc_from("a", np.arange(8, dtype=np.float32))
        b = m.alloc_from("b", np.full(8, 2.0, dtype=np.float32))
        m.vload(1, a, 0)
        m.vload(2, b, 0)
        m.vfadd(3, 1, 2)
        np.testing.assert_array_equal(m.reg_values(3), np.arange(8) + 2)
        m.vfsub(3, 1, 2)
        np.testing.assert_array_equal(m.reg_values(3), np.arange(8) - 2)
        m.vfmul(3, 1, 2)
        np.testing.assert_array_equal(m.reg_values(3), np.arange(8) * 2)
        m.vfmax(3, 1, 2)
        np.testing.assert_array_equal(m.reg_values(3), np.maximum(np.arange(8), 2))

    def test_fmacc_accumulates(self):
        m = VectorMachine(256)
        m.vsetvl(8)
        m.vbroadcast(0, 1.0)
        m.vbroadcast(1, 3.0)
        m.vbroadcast(2, 10.0)
        m.vfmacc(2, 0, 1)  # 10 + 1*3
        np.testing.assert_array_equal(m.reg_values(2), np.full(8, 13.0))
        m.vfmacc_vf(2, 2.0, 1)  # 13 + 2*3
        np.testing.assert_array_equal(m.reg_values(2), np.full(8, 19.0))

    def test_vfmul_vf_and_vmv(self):
        m = VectorMachine(256)
        m.vsetvl(4)
        m.vbroadcast(1, 3.0)
        m.vfmul_vf(2, 2.0, 1)
        np.testing.assert_array_equal(m.reg_values(2), np.full(4, 6.0))
        m.vmv(3, 2)
        np.testing.assert_array_equal(m.reg_values(3), np.full(4, 6.0))

    def test_vredsum(self):
        m = VectorMachine(512)
        m.vsetvl(16)
        buf = m.alloc_from("x", np.arange(16, dtype=np.float32))
        m.vload(0, buf, 0)
        assert m.vredsum(0) == float(np.arange(16).sum())

    def test_scalar_accounting(self):
        m = VectorMachine(512)
        m.scalar(5)
        assert m.trace.stats.scalar_instrs == 5
        with pytest.raises(IsaError):
            m.scalar(-1)

    def test_trace_statistics(self):
        m = VectorMachine(512)
        m.vsetvl(16)
        buf = m.alloc("x", 16)
        m.vload(0, buf, 0)
        m.vfadd(1, 0, 0)
        m.vstore(1, buf, 0)
        s = m.trace.stats
        assert s.vector_instrs == 1
        assert s.memory_instrs == 2
        assert s.load_bytes == 64 and s.store_bytes == 64
        assert s.average_vl() == 16

    def test_trace_disabled_keeps_stats(self):
        m = VectorMachine(512, trace=False)
        m.vsetvl(8)
        m.vbroadcast(0, 1.0)
        assert len(m.trace) == 0
        assert m.trace.stats.vector_instrs == 1


class TestTraceEvents:
    def test_memoryop_byte_span_unit(self):
        op = MemoryOp("vle", 0, 4, 16, 4, is_store=False)
        assert op.byte_span() == 64

    def test_memoryop_byte_span_strided(self):
        op = MemoryOp("vlse", 0, 4, 4, 128, is_store=False)
        assert op.byte_span() == 3 * 128 + 4

    def test_touched_lines_unit_stride(self):
        op = MemoryOp("vle", 0, 4, 32, 4, is_store=False)
        assert list(op.touched_lines(64)) == [0, 64]

    def test_touched_lines_strided_touches_each_line(self):
        op = MemoryOp("vlse", 0, 4, 4, 128, is_store=False)
        assert list(op.touched_lines(64)) == [0, 128, 256, 384]

    def test_touched_lines_indexed(self):
        op = MemoryOp("vluxei", 0, 4, 3, 0, False, indices=(0, 4, 200))
        assert list(op.touched_lines(64)) == [0, 192]

    def test_zero_vl(self):
        op = MemoryOp("vle", 0, 4, 0, 4, is_store=False)
        assert op.byte_span() == 0
        assert list(op.touched_lines(64)) == []

    def test_trace_rejects_unknown_event(self):
        trace = InstructionTrace()
        with pytest.raises(TypeError):
            trace.emit("nonsense")

    def test_trace_clear(self):
        trace = InstructionTrace()
        trace.emit(VectorOp("vfadd", 8, 32))
        trace.emit(ScalarOp("s", 2))
        trace.clear()
        assert len(trace) == 0 and trace.stats.total_instrs == 0


class TestIntrinsicsFacade:
    def test_saxpy(self):
        m = VectorMachine(512)
        epi = EpiIntrinsics(m)
        n = 50
        x = m.alloc_from("x", np.arange(n, dtype=np.float32))
        y = m.alloc_from("y", np.ones(n, dtype=np.float32))
        i = 0
        while i < n:
            gvl = epi.vsetvl_e32(n - i)
            epi.vload(0, y, i)
            epi.vload(1, x, i)
            epi.vfmacc_vf(0, 2.0, 1)
            epi.vstore(0, y, i)
            i += gvl
        np.testing.assert_allclose(y.array, 1.0 + 2.0 * np.arange(n))

    def test_dot_product(self):
        m = VectorMachine(256)
        epi = EpiIntrinsics(m)
        a = m.alloc_from("a", np.arange(8, dtype=np.float32))
        b = m.alloc_from("b", np.arange(8, dtype=np.float32))
        epi.vsetvl_e32(8)
        epi.vload(0, a, 0)
        epi.vload(1, b, 0)
        epi.vfmul(2, 0, 1)
        assert epi.vredsum(2) == float((np.arange(8) ** 2).sum())

    def test_vsetvlmax(self):
        m = VectorMachine(1024)
        epi = EpiIntrinsics(m)
        assert epi.vsetvlmax() == 32
