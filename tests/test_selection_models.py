"""Tests for the from-scratch ML stack (trees, forest, comparison models)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError, SelectionError
from repro.selection import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GaussianNaiveBayes,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LogisticRegressionClassifier,
    RandomForestClassifier,
)


def blobs(rng, n_per=40, centers=((0, 0), (6, 6), (0, 6)), spread=0.8):
    """Well-separated Gaussian blobs -> easily separable dataset."""
    X, y = [], []
    for label, c in enumerate(centers):
        X.append(rng.normal(c, spread, size=(n_per, 2)))
        y.extend([label] * n_per)
    return np.vstack(X), np.array(y)


ALL_MODELS = [
    lambda: DecisionTreeClassifier(max_depth=8, random_state=0),
    lambda: RandomForestClassifier(n_estimators=20, random_state=0),
    lambda: KNeighborsClassifier(n_neighbors=3),
    lambda: GaussianNaiveBayes(),
    lambda: LogisticRegressionClassifier(epochs=300),
    lambda: GradientBoostingClassifier(n_estimators=15),
]


class TestAllClassifiers:
    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_fits_separable_blobs(self, rng, factory):
        X, y = blobs(rng)
        model = factory().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_predictions_within_label_set(self, rng, factory):
        X, y = blobs(rng)
        model = factory().fit(X, y)
        probe = rng.normal(0, 10, size=(50, 2))
        assert set(np.unique(model.predict(probe))) <= set(np.unique(y))

    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_unfitted_raises(self, factory):
        with pytest.raises(NotFittedError):
            factory().predict(np.zeros((1, 2)))

    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_string_labels(self, rng, factory):
        X, y = blobs(rng)
        labels = np.array(["a", "b", "c"], dtype=object)[y]
        model = factory().fit(X, labels)
        assert set(model.predict(X[:5])) <= {"a", "b", "c"}

    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_empty_fit_rejected(self, factory):
        with pytest.raises(SelectionError):
            factory().fit(np.zeros((0, 2)), np.zeros(0))


class TestDecisionTree:
    def test_perfect_split_on_axis(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() == 1
        assert (tree.predict(X) == y).all()

    def test_max_depth_respected(self, rng):
        X = rng.random((200, 4))
        y = (X.sum(axis=1) > 2).astype(int)
        tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        assert tree.depth() <= 3

    def test_deterministic_given_seed(self, rng):
        X, y = blobs(rng)
        t1 = DecisionTreeClassifier(max_depth=6, max_features="sqrt", random_state=5)
        t2 = DecisionTreeClassifier(max_depth=6, max_features="sqrt", random_state=5)
        np.testing.assert_array_equal(t1.fit(X, y).predict(X), t2.fit(X, y).predict(X))

    def test_pure_node_is_leaf(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert tree.node_count() == 1

    def test_constant_features_become_leaf(self):
        X = np.ones((10, 3))
        y = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert tree.node_count() == 1  # no valid split exists

    def test_predict_proba_sums_to_one(self, rng):
        X, y = blobs(rng)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_hyperparameter_validation(self):
        with pytest.raises(SelectionError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(SelectionError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_mismatched_xy(self):
        with pytest.raises(SelectionError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), np.zeros(4))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_training_accuracy_beats_majority(self, seed):
        """Property: an unrestricted tree fits training data better than the
        majority-class baseline."""
        rng = np.random.default_rng(seed)
        X = rng.random((60, 3))
        y = (X[:, 0] + 0.3 * rng.random(60) > 0.5).astype(int)
        if len(np.unique(y)) < 2:
            return
        tree = DecisionTreeClassifier(max_depth=10).fit(X, y)
        acc = (tree.predict(X) == y).mean()
        majority = max(np.bincount(y)) / len(y)
        assert acc >= majority


class TestDecisionTreeRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 50)[:, None]
        y = (X[:, 0] > 0.5) * 10.0
        reg = DecisionTreeRegressor(max_depth=2).fit(X, y)
        pred = reg.predict(np.array([[0.1], [0.9]]))
        np.testing.assert_allclose(pred, [0.0, 10.0], atol=1e-9)

    def test_constant_target(self):
        X = np.random.default_rng(0).random((20, 2))
        reg = DecisionTreeRegressor().fit(X, np.full(20, 3.5))
        np.testing.assert_allclose(reg.predict(X[:3]), 3.5)

    def test_reduces_mse_vs_mean(self, rng):
        X = rng.random((100, 2))
        y = 3 * X[:, 0] - 2 * X[:, 1]
        reg = DecisionTreeRegressor(max_depth=6).fit(X, y)
        mse_tree = ((reg.predict(X) - y) ** 2).mean()
        mse_mean = y.var()
        assert mse_tree < 0.3 * mse_mean


class TestRandomForest:
    def test_improves_or_matches_single_tree(self, rng):
        X = rng.random((150, 6))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)  # XOR-ish
        split = 100
        tree = DecisionTreeClassifier(max_depth=10, random_state=0).fit(
            X[:split], y[:split]
        )
        forest = RandomForestClassifier(
            n_estimators=40, max_depth=10, random_state=0
        ).fit(X[:split], y[:split])
        t_acc = (tree.predict(X[split:]) == y[split:]).mean()
        f_acc = (forest.predict(X[split:]) == y[split:]).mean()
        assert f_acc >= t_acc - 0.05

    def test_feature_importances(self, rng):
        X = rng.random((200, 5))
        y = (X[:, 2] > 0.5).astype(int)  # only feature 2 matters
        forest = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        imp = forest.feature_importances()
        assert imp.argmax() == 2
        assert imp.sum() == pytest.approx(1.0)

    def test_no_bootstrap_mode(self, rng):
        X, y = blobs(rng)
        forest = RandomForestClassifier(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        assert (forest.predict(X) == y).mean() > 0.95

    def test_n_estimators_validation(self):
        with pytest.raises(SelectionError):
            RandomForestClassifier(n_estimators=0)

    def test_proba_shape(self, rng):
        X, y = blobs(rng)
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        proba = forest.predict_proba(X[:7])
        assert proba.shape == (7, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)


class TestKNN:
    def test_k1_memorizes(self, rng):
        X, y = blobs(rng)
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert (knn.predict(X) == y).all()

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(SelectionError):
            KNeighborsClassifier(n_neighbors=10).fit(np.zeros((3, 1)), np.zeros(3))

    def test_standardization_matters(self, rng):
        """With wildly different feature scales, raw KNN keys on the big
        feature; standardized KNN recovers the signal."""
        n = 100
        signal = rng.integers(0, 2, n)
        X = np.column_stack([signal + 0.1 * rng.random(n),
                             1e6 * rng.random(n)])
        y = signal
        std = KNeighborsClassifier(n_neighbors=5, standardize=True).fit(X, y)
        raw = KNeighborsClassifier(n_neighbors=5, standardize=False).fit(X, y)
        assert (std.predict(X) == y).mean() > (raw.predict(X) == y).mean()


class TestGradientBoosting:
    def test_more_rounds_fit_tighter(self, rng):
        X = rng.random((120, 3))
        y = (X[:, 0] + X[:, 1] > 1.0).astype(int)
        weak = GradientBoostingClassifier(n_estimators=2).fit(X, y)
        strong = GradientBoostingClassifier(n_estimators=30).fit(X, y)
        assert (strong.predict(X) == y).mean() >= (weak.predict(X) == y).mean()

    def test_decision_scores_shape(self, rng):
        X, y = blobs(rng)
        gb = GradientBoostingClassifier(n_estimators=5).fit(X, y)
        assert gb.decision_scores(X[:4]).shape == (4, 3)
