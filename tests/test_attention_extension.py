"""Tests for the ViT attention extension (future-work direction)."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.experiments.cli import run_experiment
from repro.extensions.attention import (
    AttentionSpec,
    attention_forward,
    attention_phases,
)
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig


def reference_attention(spec, x, wq, wk, wv, wo):
    """Independent oracle: explicit per-head loops."""
    s, h, dh = spec.seq_len, spec.heads, spec.head_dim
    q = (x @ wq).reshape(s, h, dh)
    k = (x @ wk).reshape(s, h, dh)
    v = (x @ wv).reshape(s, h, dh)
    out = np.zeros((s, h, dh))
    for head in range(h):
        scores = q[:, head] @ k[:, head].T / np.sqrt(dh)
        e = np.exp(scores - scores.max(axis=1, keepdims=True))
        probs = e / e.sum(axis=1, keepdims=True)
        out[:, head] = probs @ v[:, head]
    return (out.reshape(s, h * dh) @ wo).astype(np.float32)


def make_case(spec, seed=0):
    rng = np.random.default_rng(seed)
    d = spec.embed_dim
    x = rng.standard_normal((spec.seq_len, d)).astype(np.float32) * 0.3
    ws = [rng.standard_normal((d, d)).astype(np.float32) / np.sqrt(d)
          for _ in range(4)]
    return x, ws


class TestSpec:
    def test_head_dim(self):
        assert AttentionSpec(embed_dim=768, heads=12).head_dim == 64

    def test_validation(self):
        with pytest.raises(ConfigError):
            AttentionSpec(embed_dim=100, heads=12)
        with pytest.raises(ConfigError):
            AttentionSpec(seq_len=0)

    def test_mac_counts(self):
        spec = AttentionSpec(seq_len=4, embed_dim=8, heads=2)
        assert spec.projection_macs == 4 * 8 * 8 * 4
        assert spec.attention_macs == 2 * 2 * 4 * 4 * 4
        assert spec.scores_bytes == 2 * 16 * 4


class TestFunctional:
    def test_matches_reference(self):
        spec = AttentionSpec(seq_len=9, embed_dim=12, heads=3)
        x, ws = make_case(spec)
        out = attention_forward(spec, x, *ws)
        np.testing.assert_allclose(
            out, reference_attention(spec, x.astype(np.float64),
                                     *[w.astype(np.float64) for w in ws]),
            atol=1e-4,
        )

    def test_shape_checks(self):
        spec = AttentionSpec(seq_len=4, embed_dim=8, heads=2)
        x, ws = make_case(spec)
        with pytest.raises(ShapeError):
            attention_forward(spec, x[:, :4], *ws)
        with pytest.raises(ShapeError):
            attention_forward(spec, x, ws[0][:4], ws[1], ws[2], ws[3])

    def test_softmax_property_uniform_values(self):
        """Identical keys -> uniform attention -> output = mean of values."""
        spec = AttentionSpec(seq_len=5, embed_dim=4, heads=1)
        rng = np.random.default_rng(1)
        x = np.ones((5, 4), dtype=np.float32)  # identical tokens
        ws = [rng.standard_normal((4, 4)).astype(np.float32) for _ in range(4)]
        out = attention_forward(spec, x, *ws)
        # all rows identical since every token attends uniformly to clones
        np.testing.assert_allclose(out, np.tile(out[0], (5, 1)), atol=1e-5)


class TestSchedule:
    def test_phase_names(self):
        spec = AttentionSpec()
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        names = [p.name for p in attention_phases(spec, hw, fused=False)]
        assert names == ["proj_qkv", "proj_out", "attn_scores", "softmax",
                         "attn_context"]
        fused = [p.name for p in attention_phases(spec, hw, fused=True)]
        assert "attn_fused" in fused and "softmax" not in fused

    def test_fused_never_slower(self):
        spec = AttentionSpec()
        for vl in (512, 2048, 8192):
            hw = HardwareConfig.paper2_rvv(vl, 1.0)
            model = AnalyticalTimingModel(hw)
            unfused = model.evaluate("a", attention_phases(spec, hw, False)).cycles
            fused = model.evaluate("a", attention_phases(spec, hw, True)).cycles
            assert fused <= unfused

    def test_fused_saves_score_traffic(self):
        spec = AttentionSpec()
        hw = HardwareConfig.paper2_rvv(2048, 1.0)
        model = AnalyticalTimingModel(hw)
        unfused = model.evaluate("a", attention_phases(spec, hw, False))
        fused = model.evaluate("a", attention_phases(spec, hw, True))
        assert fused.dram_bytes < unfused.dram_bytes - spec.scores_bytes


class TestVitStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension-vit")

    def test_attention_underutilizes_very_long_vectors(self, result):
        """The thesis's claim: skinny ViT matrices cannot feed 16384-bit
        vectors the way CNN GEMMs can."""
        u = result.data["utilization"]
        assert u[(16384, "attention")] < 0.5
        assert u[(16384, "attention")] < u[(16384, "conv")] - 0.15
        assert u[(512, "attention")] > 0.9  # fine at short vectors

    def test_fusion_helps_more_at_longer_vectors(self, result):
        c = result.data["cycles"]
        gain_512 = c[(512, "attention")] / c[(512, "fused")]
        gain_8192 = c[(8192, "attention")] / c[(8192, "fused")]
        assert gain_8192 > gain_512 >= 1.0

    def test_attention_regresses_at_16384(self, result):
        """Past the point where S < VL elements, whole strips idle and the
        per-strip reuse windows blow the cache: time goes back up."""
        c = result.data["cycles"]
        assert c[(16384, "attention")] > c[(8192, "attention")]
