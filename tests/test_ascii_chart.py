"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import ConfigError
from repro.utils.ascii_chart import bar_chart, sparkline


class TestBarChart:
    def test_basic_rendering(self):
        out = bar_chart(
            {"a": [1.0, 2.0], "b": [2.0, None]},
            categories=["x", "y"],
            title="T",
        )
        assert out.startswith("T\n")
        assert "n/a" in out
        assert "█" in out

    def test_shared_scale(self):
        """The longest bar belongs to the global maximum."""
        out = bar_chart({"a": [1.0], "b": [4.0]}, categories=["c"], width=8)
        lines = [l for l in out.splitlines() if "|" in l]
        bar_a = lines[0].split("|")[1].split()[0]
        bar_b = lines[1].split("|")[1].split()[0]
        assert len(bar_b) > len(bar_a)

    def test_zero_values_render(self):
        out = bar_chart({"a": [0.0, 5.0]}, categories=["p", "q"])
        assert "0" in out

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            bar_chart({"a": [1.0]}, categories=["x", "y"])

    def test_empty_series(self):
        with pytest.raises(ConfigError):
            bar_chart({}, categories=["x"])

    def test_all_none(self):
        with pytest.raises(ConfigError):
            bar_chart({"a": [None]}, categories=["x"])

    def test_value_format(self):
        out = bar_chart({"a": [0.12345]}, categories=["x"],
                        value_format="{:.1f}")
        assert "0.1" in out


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 8

    def test_constant(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_downsampling(self):
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_empty(self):
        with pytest.raises(ConfigError):
            sparkline([])


class TestChartsInFigures:
    def test_fig01_has_chart(self):
        from repro.experiments.cli import run_experiment

        r = run_experiment("fig01")
        assert r.chart and "Winograd" in r.chart
        assert "per-layer time" in r.render()
        assert r.chart not in r.render(with_chart=False)
