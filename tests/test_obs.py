"""Tests of the observability subsystem (``repro.obs``).

Covers span nesting/aggregation, counter/gauge/histogram math, the
disabled-mode no-op path (shared singleton, no recording), cross-process
snapshot/merge, the Chrome ``trace_event`` export schema, and the
``repro-experiments --profile`` CLI flow end to end.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.obs.export import aggregate_spans, chrome_trace, to_dict
from repro.obs.metrics import (
    CounterStore,
    GaugeStore,
    Histogram,
    HistogramStore,
    percentile,
)
from repro.obs.recorder import NOOP_SPAN, NULL_RECORDER, Recorder


@pytest.fixture(autouse=True)
def _clean_global_recorder():
    """Every test starts and ends with profiling disabled."""
    obs.disable()
    yield
    obs.disable()


# --------------------------------------------------------------------- #
# disabled mode
# --------------------------------------------------------------------- #
class TestDisabledMode:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.get_recorder() is NULL_RECORDER

    def test_span_returns_shared_singleton(self):
        # the no-op path must not allocate a new object per span
        assert obs.span("a") is obs.span("b", cat="kernel", attr=1)
        assert obs.span("a") is NOOP_SPAN

    def test_noop_span_is_a_context_manager(self):
        with obs.span("anything") as s:
            assert s is NOOP_SPAN

    def test_metric_calls_are_noops(self):
        obs.count("c", 3)
        obs.gauge("g", 1.0)
        obs.observe("h", 0.5)  # nothing raised, nothing stored

    def test_enable_disable_roundtrip(self):
        rec = obs.enable()
        assert obs.enabled() and obs.get_recorder() is rec
        obs.disable()
        assert not obs.enabled()
        assert obs.get_recorder() is NULL_RECORDER


# --------------------------------------------------------------------- #
# spans: nesting, threading, aggregation
# --------------------------------------------------------------------- #
class TestSpans:
    def test_nesting_sets_parent_ids(self):
        rec = obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        spans = {(" / ".join(self._path(s, rec))) for s in rec.spans}
        assert spans == {"outer", "outer / inner"}
        inner = [s for s in rec.spans if s.name == "inner"]
        outer = next(s for s in rec.spans if s.name == "outer")
        assert len(inner) == 2
        assert all(s.parent_id == outer.span_id for s in inner)
        assert outer.parent_id == -1

    @staticmethod
    def _path(span, rec):
        by_id = {s.span_id: s for s in rec.spans}
        names = []
        cur = span
        while cur is not None:
            names.append(cur.name)
            cur = by_id.get(cur.parent_id)
        return list(reversed(names))

    def test_span_durations_are_positive_and_nested(self):
        rec = obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                time.sleep(0.002)
        inner = next(s for s in rec.spans if s.name == "inner")
        outer = next(s for s in rec.spans if s.name == "outer")
        assert inner.dur_ns > 0
        assert outer.dur_ns >= inner.dur_ns
        assert outer.start_ns <= inner.start_ns

    def test_threads_nest_independently(self):
        rec = obs.enable()

        def worker():
            with obs.span("thread_root"):
                with obs.span("thread_child"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        with obs.span("main_root"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        roots = [s for s in rec.spans if s.name == "thread_root"]
        # thread spans must root at -1, not under the main thread's span
        assert len(roots) == 4
        assert all(s.parent_id == -1 for s in roots)
        children = [s for s in rec.spans if s.name == "thread_child"]
        assert {c.parent_id for c in children} == {r.span_id for r in roots}

    def test_instrument_decorator(self):
        rec = obs.enable()

        @obs.instrument(cat="test")
        def timed_fn(x):
            return x + 1

        assert timed_fn(1) == 2
        assert timed_fn(2) == 3
        assert len(rec.spans) == 2
        assert all(s.cat == "test" for s in rec.spans)
        assert rec.spans[0].name.endswith("timed_fn")

    def test_aggregate_spans_totals_and_self_time(self):
        rec = obs.enable()
        for _ in range(3):
            with obs.span("parent"):
                with obs.span("child"):
                    pass
        nodes = aggregate_spans(list(rec.spans))
        parent = nodes[("parent",)]
        child = nodes[("parent", "child")]
        assert parent["count"] == 3 and child["count"] == 3
        # self = total minus direct-children time
        assert parent["self_ns"] == parent["total_ns"] - child["total_ns"]
        assert child["self_ns"] == child["total_ns"]


# --------------------------------------------------------------------- #
# metric math
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_math(self):
        c = CounterStore()
        c.add("x")
        c.add("x", 2.5)
        c.add("y", -1)
        assert c.get("x") == 3.5
        assert c.get("y") == -1
        assert c.get("missing") == 0.0
        c.merge({"x": 0.5, "z": 7})
        assert c.as_dict() == {"x": 4.0, "y": -1, "z": 7}

    def test_gauge_math(self):
        g = GaugeStore()
        for v in (3.0, 1.0, 2.0):
            g.set("depth", v)
        gv = g.get("depth")
        assert gv is not None
        assert (gv.last, gv.min, gv.max, gv.n) == (2.0, 1.0, 3.0, 3)
        assert gv.mean == pytest.approx(2.0)

    def test_gauge_merge(self):
        a, b = GaugeStore(), GaugeStore()
        a.set("q", 1.0)
        b.set("q", 5.0)
        b.set("q", 3.0)
        a.merge(b.snapshot())
        gv = a.get("q")
        assert gv is not None
        assert (gv.min, gv.max, gv.n, gv.last) == (1.0, 5.0, 3, 3.0)
        assert gv.mean == pytest.approx(3.0)

    def test_percentile_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = sorted(rng.standard_normal(257).tolist())
        for q in (0, 25, 50, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)), rel=1e-12
            )

    def test_percentile_edges(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        assert percentile([4.0], 99) == 4.0

    def test_histogram_summary(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        s = h.summary()
        assert s.count == 100
        assert s.mean == pytest.approx(50.5)
        assert (s.min, s.max) == (1.0, 100.0)
        assert s.p50 == pytest.approx(float(np.percentile(range(1, 101), 50)))
        assert s.p95 == pytest.approx(float(np.percentile(range(1, 101), 95)))
        assert s.p99 == pytest.approx(float(np.percentile(range(1, 101), 99)))

    def test_empty_histogram_summary_is_zero(self):
        s = Histogram().summary()
        assert s.count == 0 and s.mean == 0.0 and s.p99 == 0.0

    def test_histogram_store_merge(self):
        a, b = HistogramStore(), HistogramStore()
        a.observe("lat", 1.0)
        b.observe("lat", 3.0)
        a.merge(b.snapshot())
        hist = a.get("lat")
        assert hist is not None and sorted(hist.values) == [1.0, 3.0]


# --------------------------------------------------------------------- #
# snapshot / merge (cross-process aggregation)
# --------------------------------------------------------------------- #
class TestSnapshotMerge:
    def test_merge_remaps_ids_and_reparents_roots(self):
        worker = Recorder()
        with worker.span("w_root"):
            with worker.span("w_child"):
                pass
        worker.count("points", 5)
        worker.observe("lat", 0.25)

        parent = Recorder()
        with parent.span("dispatch") as dispatch:
            pass
        parent.count("points", 2)
        parent.merge(worker.snapshot(), parent_id=dispatch.span_id)

        names = {s.name: s for s in parent.spans}
        assert names["w_root"].parent_id == dispatch.span_id
        assert names["w_child"].parent_id == names["w_root"].span_id
        # remapped ids must not collide with the parent's own
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))
        assert parent.counters.get("points") == 7
        hist = parent.histograms.get("lat")
        assert hist is not None and hist.values == [0.25]

    def test_snapshot_is_json_serializable(self):
        rec = Recorder()
        with rec.span("s", "c", {"answer": 42}):
            pass
        json.dumps(rec.snapshot())  # tuples serialize as lists; no error


# --------------------------------------------------------------------- #
# exports
# --------------------------------------------------------------------- #
class TestExport:
    def _populated_recorder(self) -> Recorder:
        rec = Recorder()
        with rec.span("root", "engine", {"layer": 3}):
            with rec.span("leaf", "kernel"):
                pass
        rec.count("hits", 10)
        rec.gauge("depth", 2.0)
        rec.observe("lat", 0.5)
        return rec

    def test_chrome_trace_schema(self):
        trace = chrome_trace(self._populated_recorder())
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = trace["traceEvents"]
        x_events = [e for e in events if e["ph"] == "X"]
        c_events = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in x_events} == {"root", "leaf"}
        for e in x_events:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            assert e["ts"] >= 0 and e["dur"] >= 0
        assert {e["name"] for e in c_events} == {"hits", "depth"}
        root = next(e for e in x_events if e["name"] == "root")
        assert root["args"] == {"layer": 3}
        json.dumps(trace)  # must be pure-JSON serializable

    def test_write_chrome_trace_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(self._populated_recorder(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"], "trace file has no events"

    def test_to_dict_shape(self):
        dump = to_dict(self._populated_recorder())
        assert {s["name"] for s in dump["spans"]} == {"root", "leaf"}
        assert dump["counters"] == {"hits": 10}
        assert dump["histograms"]["lat"]["count"] == 1.0

    def test_render_table_mentions_everything(self):
        text = obs.render_table(self._populated_recorder())
        for needle in ("root", "leaf", "hits", "depth", "lat", "%wall"):
            assert needle in text


# --------------------------------------------------------------------- #
# instrumented subsystems
# --------------------------------------------------------------------- #
class TestInstrumentation:
    def test_engine_records_spans_and_cache_counters(self):
        from repro.engine import EvaluationEngine
        from repro.nn.models import vgg16_conv_specs
        from repro.simulator.hwconfig import HardwareConfig

        rec = obs.enable()
        engine = EvaluationEngine()
        specs = vgg16_conv_specs()[:2]
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        engine.sweep(specs, [hw], ("direct", "winograd"))
        engine.sweep(specs, [hw], ("direct", "winograd"))  # warm pass
        names = {s.name for s in rec.spans}
        assert "engine.evaluate_many" in names
        assert "engine.point" in names
        assert rec.counters.get("engine.cache.misses") == 4
        assert rec.counters.get("engine.cache.memory_hits") == 4

    def test_timing_replay_records_phases(self):
        from repro.isa import VectorMachine
        from repro.nn.layer import ConvSpec
        from repro.simulator.hwconfig import HardwareConfig
        from repro.simulator.timing import TraceTimingModel

        spec = ConvSpec(ic=4, oc=4, ih=10, iw=10, kh=3, kw=3, index=1)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 10, 10)).astype(np.float32)
        w = rng.standard_normal((4, 4, 3, 3)).astype(np.float32)
        machine = VectorMachine(512)
        from repro.algorithms.direct import DirectConv

        DirectConv().run_vectorized(spec, x, w, machine)

        rec = obs.enable()
        model = TraceTimingModel(HardwareConfig.paper2_rvv(512, 1.0))
        res = model.run(machine.trace, flush=True, engine="batched")
        names = {s.name for s in rec.spans}
        assert {"timing.run", "timing.vector", "timing.memory",
                "timing.cache_replay"} <= names
        assert rec.counters.get("timing.l1_misses") == res.l1_misses
        assert rec.counters.get("cache.l1.misses") == res.l1_misses

    def test_serving_records_latency_histogram(self):
        from repro.serving.simulator import ServingSimulator

        rec = obs.enable()
        sim = ServingSimulator(servers=2, service_time_s=0.01, seed=7)
        stats = sim.run(arrival_rate_rps=100.0, n_requests=200)
        hist = rec.histograms.get("serving.latency_s")
        assert hist is not None and len(hist.values) == 200
        assert max(hist.values) == pytest.approx(
            max(r.latency for r in stats.records)
        )
        assert rec.counters.get("serving.requests") == 200
        assert rec.gauges.get("serving.queue_depth") is not None

    def test_kernel_phase_spans(self):
        from repro.algorithms.direct import DirectConv
        from repro.isa import VectorMachine
        from repro.nn.layer import ConvSpec

        spec = ConvSpec(ic=4, oc=4, ih=10, iw=10, kh=3, kw=3, index=1)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((4, 10, 10)).astype(np.float32)
        w = rng.standard_normal((4, 4, 3, 3)).astype(np.float32)
        rec = obs.enable()
        DirectConv().run_vectorized(spec, x, w, VectorMachine(512, trace="counts"))
        names = {s.name for s in rec.spans}
        assert {"direct.pack", "direct.gemm", "direct.unpack"} <= names


# --------------------------------------------------------------------- #
# CLI --profile flow
# --------------------------------------------------------------------- #
class TestProfileCLI:
    def test_profile_writes_loadable_trace(self, tmp_path, capsys):
        from repro.experiments.cli import main

        trace_path = tmp_path / "trace.json"
        assert main(["table1", f"--profile={trace_path}"]) == 0
        out = capsys.readouterr().out
        assert "== spans" in out
        assert "experiment.table1" in out
        trace = json.loads(trace_path.read_text())
        assert any(
            e["name"] == "experiment.table1" for e in trace["traceEvents"]
        )
        # the CLI must disable profiling again on exit
        assert not obs.enabled()

    def test_no_profile_flag_stays_disabled(self, capsys):
        from repro.experiments.cli import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "== spans" not in out
        assert not obs.enabled()
