"""Property-based tests: algorithm equivalence over random layer shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import get_algorithm
from repro.nn.layer import ConvSpec
from repro.nn.reference import conv2d_reference

# random-but-small layer geometry
spec_3x3 = st.builds(
    ConvSpec,
    ic=st.integers(1, 9),
    oc=st.integers(1, 9),
    ih=st.integers(6, 18),
    iw=st.integers(6, 18),
    kh=st.just(3),
    kw=st.just(3),
    stride=st.just(1),
)

spec_general = st.builds(
    ConvSpec,
    ic=st.integers(1, 6),
    oc=st.integers(1, 6),
    ih=st.integers(5, 14),
    iw=st.integers(5, 14),
    kh=st.sampled_from([1, 3, 5]),
    kw=st.sampled_from([1, 3, 5]),
    stride=st.integers(1, 2),
)


def tensors_for(spec: ConvSpec, seed: int):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, (spec.ic, spec.ih, spec.iw)).astype(np.float32)
    w = rng.uniform(-0.5, 0.5, (spec.oc, spec.ic, spec.kh, spec.kw)).astype(
        np.float32
    )
    return x, w


class TestAlgorithmEquivalence:
    @given(spec=spec_general, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_direct_equals_reference(self, spec, seed):
        x, w = tensors_for(spec, seed)
        np.testing.assert_allclose(
            get_algorithm("direct").run(spec, x, w),
            conv2d_reference(spec, x, w),
            atol=1e-4,
        )

    @given(spec=spec_general, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_gemm_variants_equal_reference(self, spec, seed):
        x, w = tensors_for(spec, seed)
        ref = conv2d_reference(spec, x, w)
        for name in ("im2col_gemm3", "im2col_gemm6"):
            np.testing.assert_allclose(
                get_algorithm(name).run(spec, x, w), ref, atol=1e-4
            )

    @given(spec=spec_3x3, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_winograd_equals_reference(self, spec, seed):
        """Winograd F(6,3) numerical accuracy holds over random shapes."""
        x, w = tensors_for(spec, seed)
        ref = conv2d_reference(spec, x, w)
        out = get_algorithm("winograd").run(spec, x, w)
        scale = max(1.0, float(np.abs(ref).max()))
        np.testing.assert_allclose(out, ref, atol=2e-4 * scale)

    @given(spec=spec_3x3, seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_conv_linearity_through_algorithms(self, spec, seed):
        """conv(x1 + x2) == conv(x1) + conv(x2) for every implementation."""
        rng = np.random.default_rng(seed)
        x1, w = tensors_for(spec, seed)
        x2 = rng.uniform(-1, 1, x1.shape).astype(np.float32)
        for name in ("direct", "im2col_gemm3", "winograd"):
            algo = get_algorithm(name)
            lhs = algo.run(spec, (x1 + x2).astype(np.float32), w)
            rhs = algo.run(spec, x1, w) + algo.run(spec, x2, w)
            np.testing.assert_allclose(lhs, rhs, atol=5e-4)

    @given(spec=spec_3x3, seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_zero_weights_give_zero_output(self, spec, seed):
        x, w = tensors_for(spec, seed)
        zero_w = np.zeros_like(w)
        for name in ("direct", "im2col_gemm3", "im2col_gemm6", "winograd"):
            out = get_algorithm(name).run(spec, x, zero_w)
            assert np.abs(out).max() < 1e-6

    @given(spec=spec_general, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_output_shape_invariant(self, spec, seed):
        x, w = tensors_for(spec, seed)
        for name in ("direct", "im2col_gemm3"):
            out = get_algorithm(name).run(spec, x, w)
            assert out.shape == (spec.oc, spec.oh, spec.ow)
            assert out.dtype == np.float32


class TestScheduleProperties:
    @given(spec=spec_general, vlen=st.sampled_from([512, 1024, 2048, 4096]))
    @settings(max_examples=30, deadline=None)
    def test_schedules_always_positive(self, spec, vlen):
        """Any applicable schedule yields finite positive cycles."""
        from repro.algorithms import ALGORITHM_NAMES, layer_cycles
        from repro.simulator.hwconfig import HardwareConfig

        hw = HardwareConfig.paper2_rvv(vlen, 1.0)
        for name in ALGORITHM_NAMES:
            algo = get_algorithm(name)
            if not algo.applicable(spec):
                continue
            cycles = layer_cycles(name, spec, hw, fallback=False).cycles
            assert np.isfinite(cycles) and cycles > 0

    @given(spec=spec_general)
    @settings(max_examples=30, deadline=None)
    def test_bigger_cache_never_hurts(self, spec):
        """Monotonicity: cycles(64MB) <= cycles(1MB) for every algorithm."""
        from repro.algorithms import ALGORITHM_NAMES, layer_cycles
        from repro.simulator.hwconfig import HardwareConfig

        small = HardwareConfig.paper2_rvv(512, 1.0)
        big = HardwareConfig.paper2_rvv(512, 64.0)
        for name in ALGORITHM_NAMES:
            if not get_algorithm(name).applicable(spec):
                continue
            a = layer_cycles(name, spec, small, fallback=False).cycles
            b = layer_cycles(name, spec, big, fallback=False).cycles
            assert b <= a * (1 + 1e-9)
