"""Tests for the Paper I (IPDPS '23) extension experiments."""

import pytest

from repro.experiments.cli import run_experiment


@pytest.fixture(scope="module")
def table2():
    return run_experiment("paper1-table2")


@pytest.fixture(scope="module")
def vl():
    return run_experiment("paper1-vl")


@pytest.fixture(scope="module")
def cache():
    return run_experiment("paper1-cache")


class TestBlockSizeTuning:
    def test_no_benefit_on_decoupled_rvv(self, table2):
        """Paper I: BLIS-like blocking does not pay when the VPU sits at
        the L2 — all block sizes land near (here: above) the 3-loop time."""
        for ratio in table2.data["ratios"].values():
            assert 0.9 <= ratio <= 1.4

    def test_block_sizes_within_10pct_of_each_other(self, table2):
        ratios = list(table2.data["ratios"].values())
        assert max(ratios) / min(ratios) < 1.10


class TestVectorLengthSweep:
    def test_headline_speedup(self, vl):
        """Paper I: ~2.5x from 512 to 16384 bits (we accept 1.8-3.2)."""
        assert 1.8 <= vl.data["speedups"][16384] <= 3.2

    def test_saturation_beyond_8192(self, vl):
        """Paper I: performance effectively saturates beyond 8192 bits."""
        s = vl.data["speedups"]
        assert abs(s[16384] / s[8192] - 1.0) < 0.10

    def test_monotone_up_to_8192(self, vl):
        s = vl.data["speedups"]
        assert s[512] < s[1024] < s[2048] < s[4096] < s[8192]


class TestCacheSweep:
    def test_all_vector_lengths_gain(self, cache):
        assert all(g > 1.05 for g in cache.data["gains"].values())

    def test_long_vectors_gain_most(self, cache):
        """Paper I: bigger caches matter more at longer vector lengths."""
        g = cache.data["gains"]
        assert g[16384] > g[8192] > g[512]

    def test_with_big_cache_16384_beats_8192(self, cache):
        """Paper I: at 256 MB, 16384 b edges out 8192 b by only ~5%."""
        c = cache.data["cycles"]
        assert c[(16384, 256.0)] <= c[(8192, 256.0)]
        assert c[(8192, 256.0)] / c[(16384, 256.0)] < 1.15


class TestLanes:
    def test_lanes_benefit_long_vectors_more(self):
        gains = run_experiment("paper1-lanes").data["gains"]
        assert gains[8192] > gains[512]


class TestWinogradSweeps:
    @pytest.fixture(scope="class")
    def wg(self):
        return run_experiment("paper1-winograd")

    def test_vl_gains(self, wg):
        """Both networks gain substantially from 512 -> 2048 bits."""
        g = wg.data["gains"]
        assert g["vl_yolo"] > 1.3 and g["vl_vgg"] > 1.3

    def test_yolo_more_cache_sensitive_than_vgg(self, wg):
        """Paper I: VGG-16 is all-Winograd (small cache needs); YOLOv3
        falls back to im2col+GEMM on many layers and wants more cache."""
        g = wg.data["gains"]
        assert g["cache_yolo"] > g["cache_vgg"]

    def test_vgg_flat_beyond_64mb(self, wg):
        """Paper I: VGG-16 does not benefit past 64 MB."""
        c = wg.data["cycles"]
        assert c[("vgg16", 512, 64.0)] / c[("vgg16", 512, 256.0)] < 1.02


class TestPaper1Pareto:
    @pytest.fixture(scope="class")
    def pareto(self):
        return run_experiment("paper1-pareto")

    def test_knee_is_long_vector_small_cache(self, pareto):
        """Paper I: Pareto-optimal = 4096 bits with the 1 MB cache."""
        knee = pareto.data["knee"].payload
        assert knee["vlen"] == 4096
        assert knee["l2_mib"] == 1.0

    def test_small_cache_points_dominate_frontier(self, pareto):
        ones = [p for p in pareto.data["frontier"] if p.payload["l2_mib"] == 1.0]
        assert len(ones) == 5  # every VL at 1 MB is on the frontier

    def test_vl_area_cheap_cache_area_expensive(self, pareto):
        pts = {(p.payload["vlen"], p.payload["l2_mib"]): p.cost
               for p in pareto.data["points"]}
        vl_delta = pts[(8192, 1.0)] - pts[(512, 1.0)]
        cache_delta = pts[(512, 256.0)] - pts[(512, 1.0)]
        assert cache_delta > 10 * vl_delta
