"""Tests for the selector feature-importance study."""

import pytest

from repro.experiments.cli import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("selection-features")


class TestFeatureImportances:
    def test_hardware_features_lead(self, result):
        """The paper's premise: the optimal algorithm depends on VL and L2
        as much as on the layer — the RF splits on them heavily."""
        imp = result.data["importances"]
        assert imp["vlen_bits"] + imp["l2_mib"] >= 0.25
        ranked = sorted(imp, key=imp.get, reverse=True)
        assert "vlen_bits" in ranked[:3]

    def test_dropping_hw_features_costs_accuracy(self, result):
        assert (
            result.data["full_accuracy"]
            >= result.data["layers_only_accuracy"] + 0.08
        )

    def test_importances_normalized(self, result):
        assert sum(result.data["importances"].values()) == pytest.approx(1.0)

    def test_channels_matter_most_among_layer_features(self, result):
        """IC drives Winograd's fallback/spill and GEMM's K: it should lead
        the layer-side features."""
        imp = result.data["importances"]
        layer_feats = {k: v for k, v in imp.items()
                       if k not in ("vlen_bits", "l2_mib")}
        assert max(layer_feats, key=layer_feats.get) in ("ic", "oc")
