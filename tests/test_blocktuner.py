"""Tests for analytical block tuning of the 6-loop GEMM."""

import pytest

from repro.algorithms.blocktuner import (
    PAPER_BLOCKS,
    gemm6_cycles,
    tune_blocks,
    tuned_speedup,
)
from repro.errors import ConfigError
from repro.experiments.cli import run_experiment
from repro.simulator.hwconfig import HardwareConfig


class TestTuner:
    def test_tuned_never_worse(self):
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        for (m, k, n) in ((512, 4608, 784), (64, 576, 50176), (128, 256, 5776)):
            blocks, gain = tuned_speedup(m, k, n, hw)
            assert gain >= 1.0 - 1e-9

    def test_paper_blocks_within_15pct_at_1mb(self):
        """Paper I Table II's spread was ~10%: the fixed blocks must stay
        close to our tuned optimum at the 1 MB cache they were tuned for."""
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        _, gain = tuned_speedup(512, 4608, 196, hw)
        assert gain < 1.15

    def test_tuner_respects_l2_capacity(self):
        blocks = tune_blocks(512, 4608, 784, 512, 1.0)
        bm, bn, bk = blocks
        assert bk * bn * 4 <= 1024 * 1024

    def test_bigger_cache_admits_bigger_panels(self):
        small = tune_blocks(512, 4608, 784, 512, 1.0)
        big = tune_blocks(512, 4608, 784, 512, 64.0)
        assert big[1] * big[2] >= small[1] * small[2]

    def test_cycles_validation(self):
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        with pytest.raises(ConfigError):
            gemm6_cycles(8, 8, 8, hw, (0, 512, 128))

    def test_cache_of_tuning_results(self):
        a = tune_blocks(64, 576, 50176, 512, 1.0)
        b = tune_blocks(64, 576, 50176, 512, 1.0)
        assert a == b  # lru-cached, deterministic


class TestBlockAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ablation-blocks")

    def test_gains_exist_but_stay_small(self, result):
        """Re-tuning helps a little everywhere — blocking itself is the win."""
        gains = list(result.data["speedups"].values())
        assert all(1.0 <= g <= 1.35 for g in gains)
        assert max(gains) > 1.05

    def test_paper_blocks_recorded(self, result):
        assert result.data["paper_blocks"] == PAPER_BLOCKS
