"""Tests for the network executor and the Darknet cfg parser."""

import numpy as np
import pytest

from repro.errors import CfgParseError, NetworkError, ShapeError
from repro.nn import Network, parse_cfg
from repro.nn.layer import ConvSpec, ShortcutSpec
from repro.nn.models.vgg16 import VGG16_CFG
from repro.nn.reference import conv2d_reference

SMALL_CFG = """
[net]
channels=2
height=8
width=8

[convolutional]
filters=4
size=3
stride=1
pad=1
activation=leaky

[maxpool]
size=2
stride=2

[convolutional]
filters=6
size=1
stride=1
activation=linear

[connected]
output=5
activation=relu

[softmax]
"""


class TestCfgParser:
    def test_small_network_shapes(self):
        net = parse_cfg(SMALL_CFG, name="small")
        conv1, pool, conv2, fc, sm = net.layers
        assert isinstance(conv1, ConvSpec) and conv1.oc == 4 and conv1.oh == 8
        assert conv2.ic == 4 and conv2.ih == 4
        assert fc.inputs == 6 * 4 * 4 and fc.outputs == 5

    def test_runs_functionally(self, rng):
        net = parse_cfg(SMALL_CFG)
        out = net.forward(rng.standard_normal((2, 8, 8)).astype(np.float32))
        assert out.shape == (5,)
        assert out.sum() == pytest.approx(1.0, abs=1e-5)

    def test_vgg16_cfg_parses(self):
        net = parse_cfg(VGG16_CFG, name="vgg")
        assert net.num_conv_layers() == 13

    def test_route_and_shortcut(self):
        cfg = """
[net]
channels=2
height=4
width=4
[convolutional]
filters=2
size=1
[convolutional]
filters=2
size=1
[shortcut]
from=-2
[route]
layers=-1,-3
"""
        net = parse_cfg(cfg)
        assert net.layers[-1].c == 4  # concatenated channels

    def test_comments_and_blank_lines(self):
        cfg = "[net]\n# a comment\nchannels=1\nheight=4\nwidth=4\n\n[avgpool]\n"
        net = parse_cfg(cfg)
        assert len(net.layers) == 1

    @pytest.mark.parametrize(
        "cfg,msg",
        [
            ("", "empty"),
            ("[convolutional]\nfilters=2\n", "first section"),
            ("[net]\nheight=4\nwidth=4\n[bogus]\n", "unsupported section"),
            ("[net]\nheight=x\n", "not an integer"),
            ("[net]\nheight=4\nwidth=4\n[route]\n", "requires layers"),
            ("key=1\n", "outside any section"),
            ("[net]\nheight=4\nwidth=4\n[net\n", "malformed section"),
            ("[net]\nheight 4\n", "expected key=value"),
        ],
    )
    def test_parse_errors(self, cfg, msg):
        with pytest.raises(CfgParseError, match=msg):
            parse_cfg(cfg)

    def test_route_spatial_mismatch(self):
        cfg = """
[net]
channels=1
height=8
width=8
[convolutional]
filters=2
size=3
stride=1
pad=1
[convolutional]
filters=2
size=3
stride=2
pad=1
[route]
layers=-1,-2
"""
        with pytest.raises(CfgParseError, match="mismatched spatial"):
            parse_cfg(cfg)


class TestNetworkExecutor:
    def test_empty_network_rejected(self):
        with pytest.raises(NetworkError):
            Network(name="empty", layers=[])

    def test_weights_are_deterministic(self):
        net = parse_cfg(SMALL_CFG)
        w1 = net.weight_for(0)
        w2 = Network(name=net.name, layers=net.layers).weight_for(0)
        np.testing.assert_array_equal(w1, w2)

    def test_weight_for_nonweight_layer(self):
        net = parse_cfg(SMALL_CFG)
        with pytest.raises(NetworkError, match="no weights"):
            net.weight_for(1)  # maxpool

    def test_per_layer_conv_fn_hook(self, rng):
        """The algorithm-selection hook: per-ordinal conv implementations."""
        net = parse_cfg(SMALL_CFG)
        x = rng.standard_normal((2, 8, 8)).astype(np.float32)
        calls = []

        def spy(spec, xx, ww):
            calls.append(spec.index)
            return conv2d_reference(spec, xx, ww)

        ref = net.forward(x)
        out = net.forward(x, conv_fns={2: spy})
        np.testing.assert_allclose(out, ref, atol=1e-5)
        assert calls == [2]

    def test_keep_outputs(self, rng):
        net = parse_cfg(SMALL_CFG)
        outs = net.forward(
            rng.standard_normal((2, 8, 8)).astype(np.float32), keep_outputs=True
        )
        assert len(outs) == len(net.layers)

    def test_shortcut_shape_mismatch_raises(self):
        layers = [
            ConvSpec(ic=1, oc=2, ih=4, iw=4, kh=1, kw=1, index=1),
            ConvSpec(ic=2, oc=3, ih=4, iw=4, kh=1, kw=1, index=2),
            ShortcutSpec(from_index=-3, c=3, h=4, w=4),
        ]
        net = Network(name="bad", layers=layers)
        with pytest.raises((ShapeError, NetworkError)):
            net.forward(np.zeros((1, 4, 4), dtype=np.float32))

    def test_total_conv_macs(self):
        net = parse_cfg(SMALL_CFG)
        assert net.total_conv_macs() == sum(s.macs for s in net.conv_specs())

    def test_describe(self):
        net = parse_cfg(SMALL_CFG, name="tiny")
        text = net.describe()
        assert "tiny" in text and "conv1" in text
