"""Tests for parametric F(m,3) Winograd and the tile/L1 extension studies."""

import numpy as np
import pytest

from repro.errors import AlgorithmError, NotApplicableError
from repro.experiments.cli import run_experiment
from repro.extensions.winograd_variants import SUPPORTED_M, WinogradFm3
from repro.nn.layer import ConvSpec
from repro.nn.reference import conv2d_reference
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig


class TestParametricWinograd:
    @pytest.mark.parametrize("m", SUPPORTED_M)
    @pytest.mark.parametrize(
        "dims",
        [dict(ic=4, oc=5, ih=13, iw=11), dict(ic=7, oc=3, ih=9, iw=16)],
    )
    def test_functional_correctness(self, rng, m, dims):
        spec = ConvSpec(kh=3, kw=3, **dims)
        x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
        w = (0.3 * rng.standard_normal((spec.oc, spec.ic, 3, 3))).astype(
            np.float32
        )
        out = WinogradFm3(m).run(spec, x, w)
        np.testing.assert_allclose(
            out, conv2d_reference(spec, x, w), atol=5e-4
        )

    def test_unsupported_m(self):
        with pytest.raises(AlgorithmError):
            WinogradFm3(8)

    def test_applicability(self):
        algo = WinogradFm3(4)
        assert algo.applicable(ConvSpec(ic=4, oc=4, ih=8, iw=8, kh=3, kw=3))
        assert not algo.applicable(ConvSpec(ic=4, oc=4, ih=8, iw=8, kh=1, kw=1))
        with pytest.raises(NotApplicableError):
            algo.run(
                ConvSpec(ic=4, oc=4, ih=8, iw=8, kh=1, kw=1),
                np.zeros((4, 8, 8), np.float32), np.zeros((4, 4, 1, 1), np.float32),
            )

    def test_f63_matches_main_implementation(self):
        """The parametric F(6,3) schedule agrees with the calibrated one
        within a small factor (shared constants, same structure)."""
        from repro.algorithms.winograd import WinogradConv

        spec = ConvSpec(ic=64, oc=64, ih=56, iw=56, kh=3, kw=3)
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        model = AnalyticalTimingModel(hw)
        main = model.evaluate(
            "w", WinogradConv(online_weight_transform=False).schedule(spec, hw)
        ).cycles
        param = model.evaluate(
            "w", WinogradFm3(6).schedule(spec, hw)
        ).cycles
        assert param == pytest.approx(main, rel=0.35)

    def test_smaller_tiles_saturate_earlier(self):
        """F(2,3)'s 16-position tuple = 512 bits: no gain at 2048 bits."""
        spec = ConvSpec(ic=64, oc=64, ih=112, iw=112, kh=3, kw=3)
        for m, expect_gain in ((2, False), (6, True)):
            algo = WinogradFm3(m)
            c = {}
            for vl in (512, 2048):
                hw = HardwareConfig.paper2_rvv(vl, 1.0)
                c[vl] = AnalyticalTimingModel(hw).evaluate(
                    "w", algo.schedule(spec, hw)
                ).cycles
            gain = c[512] / c[2048]
            if expect_gain:
                assert gain > 1.8
            else:
                assert gain < 1.3


class TestTileTradeoffStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension-tile-tradeoff")

    def test_f63_wins_everywhere(self, result):
        """The paper's tile is performance-optimal among admissible tiles."""
        assert set(result.data["winners"].values()) == {6}

    def test_all_tiles_in_accuracy_budget(self, result):
        assert all(e <= 1e-5 for e in result.data["errors"].values())

    def test_mult_reduction_ordering(self, result):
        """At 512b, larger tiles are faster (fewer multiplies/output)."""
        c = result.data["cycles"]
        for layer in (1, 2, 3):
            assert c[(6, layer, 512)] < c[(4, layer, 512)] < c[(2, layer, 512)]


class TestL1Study:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension-l1")

    def test_l1_flips_choices(self, result):
        assert len(result.data["flipped_layers"]) >= 2

    def test_bigger_l1_favors_winograd(self, result):
        """Growing the L1 absorbs the tuple working set: Winograd takes
        layers back from GEMM."""
        w = result.data["winners"]
        wg_small = sum(1 for x in w[32] if x == "winograd")
        wg_big = sum(1 for x in w[256] if x == "winograd")
        assert wg_big > wg_small

    def test_l1_and_direct_layer1_stable(self, result):
        w = result.data["winners"]
        assert all(w[l1][0] == "direct" for l1 in w)
