"""Tests for the Paper I A64FX Winograd headlines and strided Winograd."""

import numpy as np
import pytest

from repro.algorithms.winograd import WinogradConv
from repro.errors import NotApplicableError
from repro.experiments.cli import run_experiment
from repro.isa import VectorMachine
from repro.nn.layer import ConvSpec
from repro.nn.reference import conv2d_reference


class TestStridedWinograd:
    @pytest.fixture
    def strided(self):
        return WinogradConv(allow_strided=True)

    def test_default_rejects_stride2(self):
        spec = ConvSpec(ic=4, oc=4, ih=12, iw=12, kh=3, kw=3, stride=2)
        assert not WinogradConv().applicable(spec)

    def test_strided_variant_accepts_stride2_only(self, strided):
        assert strided.applicable(
            ConvSpec(ic=4, oc=4, ih=12, iw=12, kh=3, kw=3, stride=2)
        )
        assert not strided.applicable(
            ConvSpec(ic=4, oc=4, ih=12, iw=12, kh=1, kw=1)
        )

    @pytest.mark.parametrize(
        "dims",
        [dict(ic=4, oc=6, ih=14, iw=12), dict(ic=8, oc=4, ih=13, iw=13),
         dict(ic=5, oc=5, ih=20, iw=10)],
    )
    def test_functional_correctness(self, rng, strided, dims):
        spec = ConvSpec(kh=3, kw=3, stride=2, **dims)
        x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
        w = (0.3 * rng.standard_normal((spec.oc, spec.ic, 3, 3))).astype(
            np.float32
        )
        np.testing.assert_allclose(
            strided.run(spec, x, w), conv2d_reference(spec, x, w), atol=5e-4
        )

    def test_vectorized_path(self, rng, strided):
        spec = ConvSpec(ic=4, oc=4, ih=12, iw=12, kh=3, kw=3, stride=2)
        x = rng.standard_normal((4, 12, 12)).astype(np.float32)
        w = (0.3 * rng.standard_normal((4, 4, 3, 3))).astype(np.float32)
        machine = VectorMachine(512, trace=False)
        out = strided.run_vectorized(spec, x, w, machine)
        np.testing.assert_allclose(
            out, conv2d_reference(spec, x, w), atol=2e-3
        )

    def test_stride2_costs_more_than_stride1_per_output(self, strided):
        """The subsampling waste: ~4x the tile work per retained output."""
        from repro.simulator.analytical.model import AnalyticalTimingModel
        from repro.simulator.hwconfig import HardwareConfig

        hw = HardwareConfig.paper2_rvv(512, 1.0)
        model = AnalyticalTimingModel(hw)
        s2 = ConvSpec(ic=64, oc=64, ih=56, iw=56, kh=3, kw=3, stride=2)
        s1_same_out = ConvSpec(ic=64, oc=64, ih=28, iw=28, kh=3, kw=3)
        c2 = model.evaluate("wg", strided.schedule(s2, hw)).cycles
        c1 = model.evaluate("wg", strided.schedule(s1_same_out, hw)).cycles
        assert c2 > 2.5 * c1


class TestA64fxHeadlines:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("paper1-winograd-a64fx")

    def test_stride1_speedup_band(self, result):
        """Paper: 2.4x on 3x3/s1 layers; we require a clear win (>=1.4x
        median) with the same direction."""
        med = float(np.median(result.data["s1_speedups"]))
        assert 1.4 <= med <= 3.0

    def test_stride2_is_slower(self, result):
        """Paper: strided Winograd loses to im2col+GEMM on every s2 layer."""
        assert all(s < 1.0 for s in result.data["s2_speedups"])

    def test_network_gains_in_band(self, result):
        """Paper: 1.35x (YOLOv3) / 1.5x (VGG-16)."""
        assert 1.2 <= result.data["yolo_gain"] <= 1.8
        assert 1.3 <= result.data["vgg_gain"] <= 2.2

    def test_vgg_gains_more_than_yolo(self, result):
        """VGG-16 is all 3x3/s1; YOLOv3 mixes in 1x1 GEMM layers."""
        assert result.data["vgg_gain"] > result.data["yolo_gain"]

    def test_38_applicable_layers(self, result):
        """Paper: 38 of YOLOv3's 75 conv layers are 3x3."""
        assert len(result.data["s1_speedups"]) == 33
        assert len(result.data["s2_speedups"]) == 5


class TestIsaAwareWinogradCosts:
    def test_sve_tuple_cheaper_than_rvv(self):
        """Paper I §VII: the RVV port (no zip/transpose intrinsics) is
        handicapped relative to SVE at identical geometry."""
        from repro.simulator.analytical.model import AnalyticalTimingModel
        from repro.simulator.hwconfig import HardwareConfig

        spec = ConvSpec(ic=64, oc=64, ih=56, iw=56, kh=3, kw=3)
        wg = WinogradConv(online_weight_transform=False)
        rvv = HardwareConfig.paper2_rvv(512, 1.0)
        sve = rvv.with_(isa="sve")
        c_rvv = AnalyticalTimingModel(rvv).evaluate("w", wg.schedule(spec, rvv)).cycles
        c_sve = AnalyticalTimingModel(sve).evaluate("w", wg.schedule(spec, sve)).cycles
        assert c_sve < c_rvv

    def test_isa_validation(self):
        from repro.errors import ConfigError
        from repro.simulator.hwconfig import HardwareConfig

        with pytest.raises(ConfigError):
            HardwareConfig(isa="avx")
