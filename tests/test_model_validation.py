"""Cross-validation of the two timing engines.

The analytical model (used on full layers) is checked against the
trace-driven simulator (ground truth at small scale): per-algorithm
*orderings* and *trends* must agree on layers small enough to trace.
Absolute agreement is not expected — the engines model different
granularities — but relative conclusions must be transferable, since that is
what the paper's co-design methodology relies on.
"""

import numpy as np
import pytest

from repro.algorithms import get_algorithm, layer_cycles
from repro.isa import VectorMachine
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig
from repro.simulator.timing import TraceTimingModel

# big enough to have real cache/vector behaviour, small enough to trace
SPEC = ConvSpec(ic=8, oc=16, ih=24, iw=24, kh=3, kw=3, index=1)
NAMES = ("direct", "im2col_gemm3", "im2col_gemm6", "winograd")


def trace_cycles(name: str, spec: ConvSpec, hw: HardwareConfig, seed=3) -> float:
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
    w = (0.3 * rng.standard_normal(
        (spec.oc, spec.ic, spec.kh, spec.kw)
    )).astype(np.float32)
    machine = VectorMachine(hw.vlen_bits, trace=True)
    get_algorithm(name).run_vectorized(spec, x, w, machine)
    return TraceTimingModel(hw).run(machine.trace, flush=True).cycles


@pytest.fixture(scope="module")
def traced():
    hw = HardwareConfig.paper2_rvv(512, 1.0)
    return {name: trace_cycles(name, SPEC, hw) for name in NAMES}


@pytest.fixture(scope="module")
def analytical():
    hw = HardwareConfig.paper2_rvv(512, 1.0)
    return {
        name: layer_cycles(name, SPEC, hw, fallback=False).cycles for name in NAMES
    }


class TestEngineAgreement:
    def test_both_positive(self, traced, analytical):
        for name in NAMES:
            assert traced[name] > 0 and analytical[name] > 0

    def test_gemm_variant_ordering_agrees(self, traced, analytical):
        """Both engines agree on 3-loop vs 6-loop for this small layer."""
        t = traced["im2col_gemm3"] < traced["im2col_gemm6"]
        a = analytical["im2col_gemm3"] < analytical["im2col_gemm6"]
        assert t == a

    def test_vl_speedup_direction_agrees(self):
        """Both engines see the 512->2048 bit speedup for GEMM-3."""
        lo = HardwareConfig.paper2_rvv(512, 1.0)
        hi = HardwareConfig.paper2_rvv(2048, 1.0)
        t_ratio = trace_cycles("im2col_gemm3", SPEC, lo) / trace_cycles(
            "im2col_gemm3", SPEC, hi
        )
        a_ratio = (
            layer_cycles("im2col_gemm3", SPEC, lo).cycles
            / layer_cycles("im2col_gemm3", SPEC, hi).cycles
        )
        assert t_ratio > 1.2 and a_ratio > 1.2

    def test_winograd_beats_gemm_compute_on_trace(self, traced):
        """The traced Winograd issues fewer vector FMA ops than GEMM —
        the 3x3 multiplication saving is physically present in the kernel."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((SPEC.ic, SPEC.ih, SPEC.iw)).astype(np.float32)
        w = rng.standard_normal((SPEC.oc, SPEC.ic, 3, 3)).astype(np.float32) * 0.3

        def vec_ops(name):
            m = VectorMachine(512, trace=False)
            get_algorithm(name).run_vectorized(SPEC, x, w, m)
            return m.trace.stats.vector_instrs

        assert vec_ops("winograd") < vec_ops("im2col_gemm3")

    def test_relative_magnitude_within_order(self, traced, analytical):
        """Engines agree within an order of magnitude on each algorithm."""
        for name in NAMES:
            ratio = traced[name] / analytical[name]
            assert 0.1 < ratio < 10.0, f"{name}: trace/analytical = {ratio:.2f}"
