"""Tests for the LMUL-vs-VLEN co-design study."""

import pytest

from repro.errors import ConfigError
from repro.experiments.cli import run_experiment
from repro.simulator.hwconfig import HardwareConfig


class TestLmulConfig:
    def test_vlmax_scales(self):
        hw = HardwareConfig.paper1_riscvv(512, 1.0).with_(lmul=4)
        assert hw.vlmax_f32 == 64

    def test_validation(self):
        with pytest.raises(ConfigError):
            HardwareConfig(lmul=3)
        with pytest.raises(ConfigError):
            HardwareConfig(isa="sve", lmul=2)  # an RVV feature

    def test_datapath_unchanged(self):
        base = HardwareConfig.paper1_riscvv(512, 1.0)
        grouped = base.with_(lmul=8)
        assert grouped.datapath_f32_per_cycle == base.datapath_f32_per_cycle


class TestLmulStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension-lmul")

    def test_moderate_lmul_recovers_most_of_vlen(self, result):
        """LMUL=2 is the near-free long vector (>80% of the VLEN gain)."""
        assert result.data[1024]["recovered"] >= 0.8

    def test_recovery_degrades_with_lmul(self, result):
        r = result.data
        assert r[1024]["recovered"] > r[2048]["recovered"] > r[4096]["recovered"]

    def test_high_lmul_backfires(self, result):
        """LMUL=8 leaves 4 register groups: the unroll collapses and B-reuse
        with it — grouping is no longer worth it."""
        r = result.data[4096]
        assert r["via_lmul"] > r["via_vlen"]
        assert r["recovered"] < 0.5

    def test_lmul_needs_no_extra_area(self, result):
        from repro.simulator.area.chip import core_area_mm2

        assert core_area_mm2(512, model="paper1") < core_area_mm2(
            4096, model="paper1"
        )
