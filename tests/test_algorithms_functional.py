"""Functional correctness of all four algorithms against the reference."""

import numpy as np
import pytest

from repro.algorithms import (
    ALGORITHM_NAMES,
    all_algorithms,
    get_algorithm,
    im2col,
)
from repro.algorithms.im2col import col2im_output
from repro.errors import AlgorithmError, NotApplicableError
from repro.nn.layer import ConvSpec
from repro.nn.reference import conv2d_reference


def random_case(rng, **dims):
    spec = ConvSpec(**dims)
    x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
    w = (0.3 * rng.standard_normal(
        (spec.oc, spec.ic, spec.kh, spec.kw)
    )).astype(np.float32)
    return spec, x, w


CASES_3X3_S1 = [
    dict(ic=4, oc=6, ih=12, iw=12, kh=3, kw=3),
    dict(ic=5, oc=7, ih=13, iw=11, kh=3, kw=3),  # odd dims (tails)
    dict(ic=8, oc=4, ih=6, iw=6, kh=3, kw=3),  # single winograd tile
    dict(ic=3, oc=8, ih=14, iw=14, kh=3, kw=3),  # IC < 4: winograd fallback
]
CASES_OTHER = [
    dict(ic=4, oc=6, ih=12, iw=12, kh=3, kw=3, stride=2),
    dict(ic=8, oc=4, ih=9, iw=9, kh=1, kw=1),
    dict(ic=2, oc=3, ih=11, iw=11, kh=5, kw=5),
    dict(ic=3, oc=5, ih=16, iw=10, kh=3, kw=3, stride=2),
]


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("dims", CASES_3X3_S1)
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_3x3_stride1(self, rng, dims, name):
        spec, x, w = random_case(rng, **dims)
        ref = conv2d_reference(spec, x, w)
        out = get_algorithm(name).run(spec, x, w)
        tol = 5e-4 if name == "winograd" else 5e-5
        np.testing.assert_allclose(out, ref, atol=tol * max(1.0, abs(ref).max()))

    @pytest.mark.parametrize("dims", CASES_OTHER)
    @pytest.mark.parametrize("name", ["direct", "im2col_gemm3", "im2col_gemm6"])
    def test_other_shapes(self, rng, dims, name):
        spec, x, w = random_case(rng, **dims)
        ref = conv2d_reference(spec, x, w)
        out = get_algorithm(name).run(spec, x, w)
        np.testing.assert_allclose(out, ref, atol=1e-4)

    def test_all_algorithms_registered(self):
        assert [a.name for a in all_algorithms()] == list(ALGORITHM_NAMES)

    def test_unknown_algorithm(self):
        with pytest.raises(AlgorithmError, match="unknown algorithm"):
            get_algorithm("strassen")


class TestApplicability:
    def test_winograd_requires_3x3(self):
        wg = get_algorithm("winograd")
        assert wg.applicable(ConvSpec(ic=4, oc=4, ih=8, iw=8, kh=3, kw=3))
        assert not wg.applicable(ConvSpec(ic=4, oc=4, ih=8, iw=8, kh=1, kw=1))
        assert not wg.applicable(
            ConvSpec(ic=4, oc=4, ih=8, iw=8, kh=3, kw=3, stride=2)
        )

    def test_winograd_raises_on_inapplicable_run(self, rng):
        spec, x, w = random_case(rng, ic=4, oc=4, ih=8, iw=8, kh=1, kw=1)
        with pytest.raises(NotApplicableError):
            get_algorithm("winograd").run(spec, x, w)

    def test_others_apply_everywhere(self):
        spec = ConvSpec(ic=4, oc=4, ih=8, iw=8, kh=5, kw=5, stride=2)
        for name in ("direct", "im2col_gemm3", "im2col_gemm6"):
            assert get_algorithm(name).applicable(spec)

    def test_applicability_reason_text(self):
        wg = get_algorithm("winograd")
        reason = wg.applicability_reason(
            ConvSpec(ic=4, oc=4, ih=8, iw=8, kh=3, kw=3, stride=2)
        )
        assert "stride" in reason


class TestIm2col:
    def test_shape(self, rng):
        spec, x, _ = random_case(rng, ic=3, oc=2, ih=6, iw=5, kh=3, kw=3)
        col = im2col(spec, x)
        assert col.shape == (spec.gemm_k, spec.gemm_n)

    def test_equivalence_with_conv(self, rng):
        spec, x, w = random_case(rng, ic=3, oc=4, ih=7, iw=9, kh=3, kw=3, stride=2)
        col = im2col(spec, x)
        gemm = w.reshape(spec.oc, spec.gemm_k).astype(np.float64) @ col.astype(
            np.float64
        )
        np.testing.assert_allclose(
            col2im_output(spec, gemm.astype(np.float32)),
            conv2d_reference(spec, x, w),
            atol=1e-4,
        )

    def test_1x1_is_flattened_input(self, rng):
        spec, x, _ = random_case(rng, ic=3, oc=2, ih=4, iw=4, kh=1, kw=1)
        np.testing.assert_array_equal(im2col(spec, x), x.reshape(3, 16))

    def test_padding_zeroes_border(self):
        spec = ConvSpec(ic=1, oc=1, ih=3, iw=3, kh=3, kw=3)
        x = np.ones((1, 3, 3), dtype=np.float32)
        col = im2col(spec, x)
        # the first column corresponds to output (0,0): top-left kernel taps
        # read padded zeros
        assert col[0, 0] == 0.0 and col[4, 0] == 1.0


class TestConvFnAdapter:
    def test_network_integration(self, rng, small_spec, small_tensors):
        x, w = small_tensors
        fn = get_algorithm("direct").conv_fn()
        np.testing.assert_allclose(
            fn(small_spec, x, w), conv2d_reference(small_spec, x, w), atol=1e-4
        )
        assert fn.__name__ == "conv_direct"
