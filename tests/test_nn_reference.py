"""Tests for the NumPy reference kernels (the correctness oracles)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layer import (
    AvgPoolSpec,
    ConnectedSpec,
    ConvSpec,
    MaxPoolSpec,
    UpsampleSpec,
)
from repro.nn.reference import (
    apply_activation,
    avgpool_reference,
    connected_reference,
    conv2d_reference,
    maxpool_reference,
    pad_input,
    softmax_reference,
    upsample_reference,
)


def brute_force_conv(spec: ConvSpec, x, w):
    """Triple-checked scalar convolution (slow, tiny shapes only)."""
    xp = pad_input(x.astype(np.float64), spec.pad)
    out = np.zeros((spec.oc, spec.oh, spec.ow))
    for o in range(spec.oc):
        for y in range(spec.oh):
            for z in range(spec.ow):
                acc = 0.0
                for c in range(spec.ic):
                    for dy in range(spec.kh):
                        for dz in range(spec.kw):
                            acc += (
                                xp[c, y * spec.stride + dy, z * spec.stride + dz]
                                * w[o, c, dy, dz]
                            )
                out[o, y, z] = acc
    return out.astype(np.float32)


class TestConvReference:
    @pytest.mark.parametrize(
        "dims",
        [
            dict(ic=1, oc=1, ih=5, iw=5, kh=3, kw=3),
            dict(ic=2, oc=3, ih=6, iw=4, kh=3, kw=3, stride=2),
            dict(ic=3, oc=2, ih=7, iw=7, kh=1, kw=1),
            dict(ic=2, oc=2, ih=9, iw=9, kh=5, kw=5),
            dict(ic=1, oc=2, ih=8, iw=8, kh=3, kw=3, pad=0),
        ],
    )
    def test_against_brute_force(self, rng, dims):
        spec = ConvSpec(**dims)
        x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
        w = rng.standard_normal((spec.oc, spec.ic, spec.kh, spec.kw)).astype(
            np.float32
        )
        np.testing.assert_allclose(
            conv2d_reference(spec, x, w), brute_force_conv(spec, x, w), atol=1e-4
        )

    def test_identity_kernel(self, rng):
        spec = ConvSpec(ic=1, oc=1, ih=6, iw=6, kh=1, kw=1)
        x = rng.standard_normal((1, 6, 6)).astype(np.float32)
        w = np.ones((1, 1, 1, 1), dtype=np.float32)
        np.testing.assert_allclose(conv2d_reference(spec, x, w), x, atol=1e-6)

    def test_wrong_weight_shape(self, rng):
        spec = ConvSpec(ic=2, oc=2, ih=4, iw=4)
        x = np.zeros((2, 4, 4), dtype=np.float32)
        with pytest.raises(ShapeError):
            conv2d_reference(spec, x, np.zeros((2, 3, 3, 3), dtype=np.float32))

    def test_linearity(self, rng):
        """conv(a*x1 + x2) == a*conv(x1) + conv(x2)."""
        spec = ConvSpec(ic=2, oc=3, ih=6, iw=6)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        x1 = rng.standard_normal((2, 6, 6)).astype(np.float32)
        x2 = rng.standard_normal((2, 6, 6)).astype(np.float32)
        lhs = conv2d_reference(spec, (2.0 * x1 + x2).astype(np.float32), w)
        rhs = 2.0 * conv2d_reference(spec, x1, w) + conv2d_reference(spec, x2, w)
        np.testing.assert_allclose(lhs, rhs, atol=1e-3)


class TestPooling:
    def test_maxpool_basic(self):
        spec = MaxPoolSpec(c=1, ih=4, iw=4, size=2, stride=2)
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = maxpool_reference(spec, x)
        np.testing.assert_array_equal(out[0], [[5, 7], [13, 15]])

    def test_maxpool_padded_same(self):
        spec = MaxPoolSpec(c=1, ih=3, iw=3, size=2, stride=1, pad=1)
        x = np.arange(9, dtype=np.float32).reshape(1, 3, 3)
        out = maxpool_reference(spec, x)
        assert out.shape == (1, 3, 3)
        assert out[0, 2, 2] == 8  # padding never wins

    def test_maxpool_shape_check(self):
        spec = MaxPoolSpec(c=2, ih=4, iw=4)
        with pytest.raises(ShapeError):
            maxpool_reference(spec, np.zeros((1, 4, 4), dtype=np.float32))

    def test_avgpool(self):
        spec = AvgPoolSpec(c=2, ih=2, iw=2)
        x = np.array([[[1, 3], [5, 7]], [[0, 0], [0, 4]]], dtype=np.float32)
        np.testing.assert_allclose(avgpool_reference(spec, x), [4.0, 1.0])


class TestOtherLayers:
    def test_connected(self, rng):
        spec = ConnectedSpec(inputs=6, outputs=2)
        x = rng.standard_normal(6).astype(np.float32)
        w = rng.standard_normal((2, 6)).astype(np.float32)
        np.testing.assert_allclose(
            connected_reference(spec, x, w), w @ x, atol=1e-5
        )

    def test_connected_flattens(self, rng):
        spec = ConnectedSpec(inputs=12, outputs=3)
        x = rng.standard_normal((3, 2, 2)).astype(np.float32)
        w = rng.standard_normal((3, 12)).astype(np.float32)
        assert connected_reference(spec, x, w).shape == (3,)

    def test_upsample(self):
        spec = UpsampleSpec(c=1, ih=2, iw=2, stride=2)
        x = np.array([[[1, 2], [3, 4]]], dtype=np.float32)
        out = upsample_reference(spec, x)
        assert out.shape == (1, 4, 4)
        np.testing.assert_array_equal(out[0, :2, :2], [[1, 1], [1, 1]])

    def test_softmax_sums_to_one(self, rng):
        out = softmax_reference(rng.standard_normal(10).astype(np.float32))
        assert out.sum() == pytest.approx(1.0, abs=1e-5)
        assert (out > 0).all()

    def test_softmax_stability(self):
        out = softmax_reference(np.array([1000.0, 1000.0], dtype=np.float32))
        np.testing.assert_allclose(out, [0.5, 0.5])


class TestActivations:
    def test_linear(self, rng):
        x = rng.standard_normal(5).astype(np.float32)
        np.testing.assert_array_equal(apply_activation("linear", x), x)

    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        np.testing.assert_array_equal(apply_activation("relu", x), [0, 0, 2])

    def test_leaky(self):
        x = np.array([-10.0, 5.0], dtype=np.float32)
        np.testing.assert_allclose(apply_activation("leaky", x), [-1.0, 5.0])

    def test_unknown_activation(self):
        with pytest.raises(ShapeError):
            apply_activation("swish", np.zeros(1, dtype=np.float32))
