"""Tests for the depthwise-convolution extension."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.experiments.cli import run_experiment
from repro.extensions.depthwise import (
    DepthwiseConvSpec,
    depthwise_direct_phases,
    depthwise_forward,
    depthwise_gemm_phases,
    mobilenet_v1_depthwise_layers,
)
from repro.nn.layer import ConvSpec
from repro.nn.reference import conv2d_reference
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig


class TestSpec:
    def test_dims(self):
        s = DepthwiseConvSpec(c=8, ih=10, iw=10, stride=2)
        assert (s.oh, s.ow) == (5, 5)
        assert s.pad == 1
        assert s.macs == 8 * 25 * 9

    def test_validation(self):
        with pytest.raises(ConfigError):
            DepthwiseConvSpec(c=0, ih=4, iw=4)

    def test_describe(self):
        assert "8 ch" in DepthwiseConvSpec(c=8, ih=10, iw=10, index=2).describe()


class TestFunctional:
    @pytest.mark.parametrize("stride", [1, 2])
    def test_matches_grouped_reference(self, rng, stride):
        """Depthwise == full conv with a block-diagonal weight tensor."""
        spec = DepthwiseConvSpec(c=4, ih=10, iw=10, stride=stride)
        x = rng.standard_normal((4, 10, 10)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3)).astype(np.float32)
        out = depthwise_forward(spec, x, w)
        full_spec = ConvSpec(ic=4, oc=4, ih=10, iw=10, kh=3, kw=3,
                             stride=stride)
        w_full = np.zeros((4, 4, 3, 3), dtype=np.float32)
        for c in range(4):
            w_full[c, c] = w[c]
        np.testing.assert_allclose(
            out, conv2d_reference(full_spec, x, w_full), atol=1e-4
        )

    def test_shape_checks(self, rng):
        spec = DepthwiseConvSpec(c=2, ih=6, iw=6)
        with pytest.raises(ShapeError):
            depthwise_forward(spec, np.zeros((3, 6, 6), np.float32),
                              np.zeros((2, 3, 3), np.float32))
        with pytest.raises(ShapeError):
            depthwise_forward(spec, np.zeros((2, 6, 6), np.float32),
                              np.zeros((2, 5, 5), np.float32))


class TestSchedules:
    HW = HardwareConfig.paper2_rvv(512, 1.0)

    def test_both_positive(self):
        spec = DepthwiseConvSpec(c=64, ih=28, iw=28)
        for builder in (depthwise_direct_phases, depthwise_gemm_phases):
            cycles = AnalyticalTimingModel(self.HW).evaluate(
                "dw", builder(spec, self.HW)
            ).cycles
            assert cycles > 0

    def test_direct_full_channel_vectors(self):
        spec = DepthwiseConvSpec(c=64, ih=28, iw=28)
        phase = depthwise_direct_phases(spec, self.HW)[0]
        assert phase.vector_active == 16.0  # full 512-bit vectors

    def test_gemm_is_degenerate(self):
        """Per-channel M=1 GEMMs cost far more than the direct dataflow."""
        spec = DepthwiseConvSpec(c=256, ih=28, iw=28)
        model = AnalyticalTimingModel(self.HW)
        direct = model.evaluate("d", depthwise_direct_phases(spec, self.HW)).cycles
        gemm = model.evaluate("g", depthwise_gemm_phases(spec, self.HW)).cycles
        assert gemm > 3 * direct


class TestMobileNet:
    def test_thirteen_layers(self):
        layers = mobilenet_v1_depthwise_layers()
        assert len(layers) == 13
        assert layers[0].c == 32 and layers[-1].c == 1024
        assert layers[-1].ih == 7

    def test_input_validation(self):
        with pytest.raises(ConfigError):
            mobilenet_v1_depthwise_layers(input_size=100)

    def test_study_direct_wins_everywhere(self):
        r = run_experiment("extension-depthwise")
        for layer, ratio in r.data["gemm_over_direct"].items():
            assert ratio > 3.0, f"layer {layer}"
