"""The CLI error contract: exception type -> exit code, docs in sync.

``docs/ROBUSTNESS.md`` documents the mapping; ``ERROR_EXIT_CODES`` in
:mod:`repro.experiments.cli` implements it; ``repro-serve`` reuses it.
These tests pin all three to each other so the table can never silently
drift from the code.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.errors import (
    CampaignAbortedError,
    ConfigError,
    EngineError,
    ExperimentError,
    FaultSpecError,
    ReproError,
)
from repro.experiments import cli

ROBUSTNESS_MD = Path(__file__).resolve().parent.parent / "docs/ROBUSTNESS.md"


class TestExperimentsCliExitCodes:
    @pytest.mark.parametrize("exc, code", [
        (ConfigError("bad vlen"), 3),
        (ExperimentError("no table"), 4),
        (EngineError("pool died"), 5),
        (FaultSpecError("bad spec"), 6),
        (ReproError("generic"), 10),
        (CampaignAbortedError("injected abort"), 20),
    ])
    def test_each_error_type_maps_to_its_code(self, monkeypatch, capsys,
                                              exc, code):
        def explode(name):
            raise exc
        monkeypatch.setattr(cli, "run_experiment", explode)
        assert cli.main(["table1"]) == code
        err = capsys.readouterr().err
        assert f"error [{type(exc).__name__}]" in err

    def test_specific_classes_beat_the_repro_error_catch_all(self):
        # Every specific class is a ReproError; the table is ordered
        # most-specific-first so each must match before the catch-all.
        specific = [cls for cls, _ in cli.ERROR_EXIT_CODES
                    if cls is not ReproError]
        assert all(issubclass(cls, ReproError) for cls in specific)
        catch_all_pos = [cls for cls, _ in cli.ERROR_EXIT_CODES].index(
            ReproError
        )
        assert catch_all_pos == len(cli.ERROR_EXIT_CODES) - 1

    def test_keyboard_interrupt_is_130(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli, "run_experiment",
            lambda name: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        assert cli.main(["table1"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_unknown_experiment_is_usage_error_2(self, capsys):
        assert cli.main(["definitely-not-an-experiment"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_malformed_repro_faults_is_6(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "not=a,valid.spec")
        assert cli.main(["table1"]) == 6
        assert "error [FaultSpecError]" in capsys.readouterr().err

    def test_success_path_is_0(self, capsys):
        assert cli.main(["--list"]) == 0


class TestGridBackendFlag:
    """``--grid-backend`` validates eagerly, before any experiment work."""

    @pytest.fixture(autouse=True)
    def _restore_grid_default(self):
        from repro.simulator.analytical import grid

        before = grid.grid_defaults()
        yield
        grid.configure_grid(backend=before)

    def test_invalid_choice_is_argparse_usage_error_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["table1", "--grid-backend", "simd"])
        assert excinfo.value.code == 2
        assert "--grid-backend" in capsys.readouterr().err

    def test_compiled_without_numba_fails_fast_with_10(self, capsys):
        from repro.simulator._compiled import HAVE_NUMBA

        if HAVE_NUMBA:
            pytest.skip("Numba installed; 'compiled' is valid here")
        # the bogus experiment name proves eagerness: the backend is
        # rejected before dispatch even looks at the experiment list
        assert cli.main(
            ["definitely-not-an-experiment", "--grid-backend", "compiled"]
        ) == 10
        assert "error [SimulationError]" in capsys.readouterr().err

    def test_valid_backend_is_applied_before_dispatch(self, capsys):
        from repro.simulator.analytical import grid

        assert cli.main(
            ["definitely-not-an-experiment", "--grid-backend", "numpy"]
        ) == 2
        assert "unknown experiments" in capsys.readouterr().err
        assert grid.grid_defaults() == "numpy"


class TestServeCliExitCodes:
    def test_malformed_repro_faults_is_6(self, monkeypatch, capsys):
        from repro.serve import server

        monkeypatch.setenv("REPRO_FAULTS", "not=a,valid.spec")
        assert server.main(["--no-predictor"]) == 6
        assert "error [FaultSpecError]" in capsys.readouterr().err

    def test_serve_error_is_repro_error_catch_all_10(self, capsys):
        from repro.serve import server

        assert server.main(["--no-predictor", "--queue-limit", "-1"]) == 10
        assert "error [ServeError]" in capsys.readouterr().err


class TestDocsTableParity:
    def _documented_codes(self) -> dict[str, int]:
        """Error-class rows of the 'CLI error contract' table."""
        text = ROBUSTNESS_MD.read_text()
        section = text.split("## CLI error contract", 1)[1]
        section = section.split("\n## ", 1)[0]
        out: dict[str, int] = {}
        for condition, code in re.findall(
            r"^\|\s*(.+?)\s*\|\s*(\d+)\s*\|\s*$", section, flags=re.M
        ):
            match = re.search(r"`(\w*Error)`", condition)
            if match:
                out[match.group(1)] = int(code)
        return out

    def test_table_exists_and_matches_error_exit_codes(self):
        documented = self._documented_codes()
        assert documented, "ROBUSTNESS.md lost its CLI error contract table"
        for exc_class, code in cli.ERROR_EXIT_CODES:
            name = (
                "ReproError" if exc_class is ReproError else exc_class.__name__
            )
            assert documented.get(name) == code, (
                f"docs/ROBUSTNESS.md documents {name} -> "
                f"{documented.get(name)}, code says {code}"
            )
        # and nothing documented that the code no longer implements
        implemented = {
            cls.__name__: code for cls, code in cli.ERROR_EXIT_CODES
        }
        for name, code in documented.items():
            assert implemented.get(name) == code
