"""End-to-end integration: the full pipeline the paper's system implies.

A letterboxed paper-style input runs through YOLOv3-tiny with the trained
random-forest selector choosing each conv layer's algorithm for a target
hardware configuration; the result must match the reference execution and
the selector's choices must match the analytical oracle.
"""

import numpy as np
import pytest

from repro.algorithms.registry import best_algorithm, get_algorithm
from repro.nn.image import paper_input
from repro.nn.models import yolov3_tiny_network
from repro.simulator.hwconfig import HardwareConfig


@pytest.fixture(scope="module")
def hw():
    return HardwareConfig.paper2_rvv(2048, 4.0)


class TestEndToEndServing:
    def test_selected_inference_matches_reference(self, trained_selector, hw):
        net = yolov3_tiny_network(input_size=64)
        x = paper_input(network_size=64, seed=3)
        reference = net.forward(x)

        conv_fns = {}
        chosen = {}
        for spec in net.conv_specs():
            name = trained_selector.select(spec, hw)
            algo = get_algorithm(name)
            if not algo.applicable(spec):
                algo = get_algorithm("im2col_gemm6")
            chosen[spec.index] = algo.name
            conv_fns[spec.index] = algo.conv_fn()
        mixed = net.forward(x, conv_fns=conv_fns)

        scale = max(1.0, float(np.abs(reference).max()))
        np.testing.assert_allclose(mixed, reference, atol=5e-3 * scale)
        assert len(set(chosen.values())) >= 2  # genuinely mixed algorithms

    def test_selector_generalizes_to_unseen_layers(self, trained_selector, hw):
        """YOLOv3-tiny's layers are out-of-distribution (not in the 448-point
        training set); exact oracle agreement drops there, but must stay well
        above the 25% random-choice floor.  The regret test below carries the
        real guarantee (mispredictions are cheap), matching the paper's
        framing."""
        net = yolov3_tiny_network()  # full-size dims
        agree = total = 0
        for spec in net.conv_specs():
            predicted = trained_selector.select(spec, hw)
            oracle, _ = best_algorithm(spec, hw)
            agree += predicted == oracle
            total += 1
        assert agree / total >= 0.4

    def test_mispredictions_cost_little(self, trained_selector, hw):
        """Even where the selector misses on unseen layers, the chosen
        algorithm stays within 2x of the oracle (paper: small regret)."""
        net = yolov3_tiny_network()
        for spec in net.conv_specs():
            predicted = trained_selector.select(spec, hw)
            _, cycles = best_algorithm(spec, hw)
            best = min(cycles.values())
            chosen = cycles.get(predicted)
            if chosen is None:  # predicted algorithm inapplicable: fallback
                chosen = cycles["im2col_gemm6"]
            assert chosen <= 2.0 * best


class TestForwardWithSelector:
    def test_convenience_wrapper(self, trained_selector, hw, rng):
        from repro.nn.models import yolov3_tiny_network
        from repro.nn.image import paper_input

        net = yolov3_tiny_network(input_size=64)
        x = paper_input(network_size=64, seed=5)
        out, chosen = net.forward_with_selector(x, trained_selector, hw)
        reference = net.forward(x)
        scale = max(1.0, float(np.abs(reference).max()))
        np.testing.assert_allclose(out, reference, atol=5e-3 * scale)
        assert set(chosen) == {s.index for s in net.conv_specs()}
