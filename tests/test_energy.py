"""Tests for the energy model and the energy co-design study."""

import pytest

from repro.errors import ConfigError
from repro.experiments.cli import run_experiment
from repro.nn.layer import ConvSpec
from repro.nn.models import vgg16_conv_specs
from repro.simulator.energy import (
    DEFAULT_ENERGY,
    EnergyBreakdown,
    EnergyConstants,
    layer_energy,
    network_energy,
)
from repro.simulator.hwconfig import HardwareConfig

SPEC = ConvSpec(ic=64, oc=128, ih=56, iw=56, kh=3, kw=3, index=1)
HW = HardwareConfig.paper2_rvv(512, 1.0)


class TestEnergyModel:
    def test_positive_components(self):
        e = layer_energy("im2col_gemm3", SPEC, HW)
        for part in (e.compute_j, e.scalar_j, e.l2_j, e.dram_j, e.leakage_j):
            assert part > 0
        assert e.total_j == pytest.approx(
            e.compute_j + e.scalar_j + e.l2_j + e.dram_j + e.leakage_j
        )

    def test_constants_validation(self):
        with pytest.raises(ConfigError):
            EnergyConstants(dram_byte_pj=0)

    def test_compute_energy_roughly_vl_invariant(self):
        """The same MACs execute at any VL: lane-op energy barely moves."""
        e512 = layer_energy("im2col_gemm3", SPEC, HW).compute_j
        e4096 = layer_energy(
            "im2col_gemm3", SPEC, HardwareConfig.paper2_rvv(4096, 1.0)
        ).compute_j
        assert e4096 == pytest.approx(e512, rel=0.3)

    def test_leakage_scales_with_area_and_time(self):
        small = layer_energy("im2col_gemm3", SPEC, HW)
        big_cache = layer_energy(
            "im2col_gemm3", SPEC, HardwareConfig.paper2_rvv(512, 64.0)
        )
        assert big_cache.leakage_j > small.leakage_j  # much more area

    def test_dram_energy_tracks_traffic(self):
        """im2col+GEMM moves more DRAM bytes than Direct on this layer."""
        gemm = layer_energy("im2col_gemm3", SPEC, HW)
        direct = layer_energy("direct", SPEC, HW)
        assert gemm.dram_j > direct.dram_j

    def test_winograd_star_fallback(self):
        one_by_one = ConvSpec(ic=64, oc=64, ih=28, iw=28, kh=1, kw=1)
        e = layer_energy("winograd", one_by_one, HW)
        assert e.total_j > 0  # fell back to GEMM-6 instead of raising

    def test_network_energy_sums_layers(self):
        specs = vgg16_conv_specs()[:3]
        total = network_energy(specs, HW, "direct").total_j
        by_layer = sum(
            layer_energy("direct", s, HW).total_j for s in specs
        )
        assert total == pytest.approx(by_layer)

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            network_energy([SPEC], HW, "fastest")

    def test_breakdown_merge(self):
        a = EnergyBreakdown(compute_j=1.0, dram_j=2.0)
        b = EnergyBreakdown(compute_j=0.5, leakage_j=1.0)
        a.merge(b)
        assert a.compute_j == 1.5 and a.leakage_j == 1.0 and a.total_j == 4.5


class TestEnergyStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension-energy")

    def test_selection_saves_energy_everywhere(self, result):
        """Algorithm selection is an energy optimization too."""
        assert all(v > 1.15 for v in result.data["selection_saving"].values())

    def test_energy_optimal_differs_from_perf_optimal(self, result):
        """The 64 MB leakage makes the fastest config not the greenest."""
        assert result.data["energy_optimal"] != result.data["perf_optimal"]
        # specifically, the energy optimum uses a smaller cache
        assert result.data["energy_optimal"][1] < result.data["perf_optimal"][1]

    def test_64mb_energy_penalty(self, result):
        """At fixed VL, 64 MB costs more energy than 16 MB despite being
        (slightly) faster — leakage over ~30 mm^2 of SRAM."""
        e = result.data["energy"]
        for vl in (512, 1024, 2048, 4096):
            assert e[(vl, 64.0)] > e[(vl, 16.0)]

    def test_longer_vectors_save_energy_via_time(self, result):
        e = result.data["energy"]
        assert e[(2048, 1.0)] < e[(512, 1.0)]
