"""Tests for heterogeneous (mixed-model) co-location."""

import pytest

from repro.errors import ConfigError
from repro.experiments.cli import run_experiment
from repro.experiments.configs import workload
from repro.serving.mixed import ModelGroup, evaluate_mixed


@pytest.fixture(scope="module")
def vgg_group():
    return ModelGroup("vgg16", tuple(workload("vgg16")), instances=4)


@pytest.fixture(scope="module")
def yolo_group():
    return ModelGroup("yolov3", tuple(workload("yolov3")), instances=4)


class TestMixedEvaluation:
    def test_basic(self, vgg_group, yolo_group):
        result = evaluate_mixed([vgg_group, yolo_group], 2048, 16.0)
        assert result.total_instances == 8
        assert result.aggregate_images_per_second() > 0
        assert set(result.per_group_cycles) == {"vgg16", "yolov3"}

    def test_group_validation(self):
        with pytest.raises(ConfigError):
            ModelGroup("x", tuple(), instances=1)
        with pytest.raises(ConfigError):
            ModelGroup("x", tuple(workload("vgg16")), instances=0)

    def test_duplicate_names_rejected(self, vgg_group):
        with pytest.raises(ConfigError, match="duplicate"):
            evaluate_mixed([vgg_group, vgg_group], 2048, 16.0)

    def test_partition_floor(self, vgg_group, yolo_group):
        with pytest.raises(ConfigError, match="floor"):
            evaluate_mixed([vgg_group, yolo_group], 2048, 1.0)

    def test_empty_deployment(self):
        with pytest.raises(ConfigError):
            evaluate_mixed([], 2048, 16.0)

    def test_matches_homogeneous_colocation(self, vgg_group):
        """A single-group mixed deployment equals the Fig. 12 model."""
        from repro.serving.colocation import ColocationScenario, evaluate_colocation

        mixed = evaluate_mixed([vgg_group], 2048, 16.0)
        homo = evaluate_colocation(
            ColocationScenario(cores=4, vlen_bits=2048, shared_l2_mib=16.0,
                               instances=4),
            list(vgg_group.specs),
        )
        assert mixed.per_group_cycles["vgg16"] == pytest.approx(
            homo.cycles_per_image
        )
        assert mixed.area_mm2 == pytest.approx(homo.area_mm2)

    def test_more_tenants_smaller_slices_slower_each(self, vgg_group):
        alone = evaluate_mixed([vgg_group], 2048, 16.0)
        crowded = evaluate_mixed(
            [vgg_group,
             ModelGroup("yolov3", tuple(workload("yolov3")), instances=12)],
            2048, 16.0,
        )
        assert (
            crowded.per_group_cycles["vgg16"]
            >= alone.per_group_cycles["vgg16"]
        )


class TestMixedStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("serving-mixed")

    def test_selection_helps_every_split(self, result):
        assert all(g > 1.2 for g in result.data["selection_gains"].values())

    def test_throughput_per_area_stays_efficient(self, result):
        """Optimal-policy efficiency varies < 10% across tenant mixes."""
        pts = result.data["points"]
        eff = [v["per_area"] for (split, pol), v in pts.items() if pol == "optimal"]
        assert max(eff) / min(eff) < 1.10
