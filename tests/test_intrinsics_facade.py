"""Coverage of the EPI intrinsics façade (all spellings exercised)."""

import numpy as np
import pytest

from repro.isa import EpiIntrinsics, VectorMachine
from repro.isa.types import E64


@pytest.fixture
def epi():
    return EpiIntrinsics(VectorMachine(512, trace=True))


class TestFacadeCompleteness:
    def test_strided_spellings(self, epi):
        m = epi.m
        src = m.alloc_from("x", np.arange(32, dtype=np.float32))
        dst = m.alloc("y", 32)
        epi.vsetvl_e32(8)
        epi.vload_strided(0, src, 0, 4)
        epi.vstore_strided(0, dst, 0, 2)
        np.testing.assert_array_equal(dst.array[0:16:2], np.arange(0, 32, 4))

    def test_indexed_spellings(self, epi):
        m = epi.m
        src = m.alloc_from("x", np.arange(16, dtype=np.float32))
        dst = m.alloc("y", 16)
        epi.vsetvl_e32(4)
        epi.vload_indexed(1, src, np.array([5, 1, 9, 3]))
        epi.vstore_indexed(1, dst, np.array([0, 1, 2, 3]))
        np.testing.assert_array_equal(dst.array[:4], [5, 1, 9, 3])

    def test_arith_spellings(self, epi):
        epi.vsetvl_e32(8)
        epi.vbroadcast(0, 2.0)
        epi.vbroadcast(1, 3.0)
        epi.vfadd(2, 0, 1)
        epi.vfsub(3, 1, 0)
        epi.vfmul(4, 0, 1)
        epi.vfmacc(4, 0, 1)  # 6 + 6 = 12
        epi.vfmul_vf(5, 10.0, 0)
        m = epi.m
        np.testing.assert_array_equal(m.reg_values(2), np.full(8, 5.0))
        np.testing.assert_array_equal(m.reg_values(3), np.full(8, 1.0))
        np.testing.assert_array_equal(m.reg_values(4), np.full(8, 12.0))
        np.testing.assert_array_equal(m.reg_values(5), np.full(8, 20.0))

    def test_e64_spelling(self, epi):
        assert epi.vsetvl_e64(1000) == 8  # 512 bits / 64
        assert epi.m.sew is E64

    def test_trace_records_facade_calls(self, epi):
        src = epi.m.alloc_from("x", np.ones(8, dtype=np.float32))
        epi.vsetvl_e32(8)
        epi.vload(0, src, 0)
        epi.vredsum(0)
        names = [type(e).__name__ for e in epi.m.trace]
        assert "MemoryOp" in names and "VectorOp" in names
