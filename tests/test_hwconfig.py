"""Tests for HardwareConfig presets and derived quantities."""

import pytest

from repro.errors import ConfigError, VectorLengthError
from repro.simulator.hwconfig import HardwareConfig, VectorUnitStyle
from repro.simulator.memory import DramModel


class TestDerived:
    def test_vlmax_f32(self):
        assert HardwareConfig(vlen_bits=512).vlmax_f32 == 16
        assert HardwareConfig(vlen_bits=4096).vlmax_f32 == 128

    def test_integrated_datapath_scales_with_vlen(self):
        a = HardwareConfig(vlen_bits=512, style=VectorUnitStyle.INTEGRATED)
        b = HardwareConfig(vlen_bits=2048, style=VectorUnitStyle.INTEGRATED)
        assert b.datapath_f32_per_cycle == 4 * a.datapath_f32_per_cycle

    def test_decoupled_datapath_fixed_by_lanes(self):
        a = HardwareConfig(vlen_bits=512, style=VectorUnitStyle.DECOUPLED,
                           vector_lanes=8)
        b = a.with_(vlen_bits=4096)
        assert a.datapath_f32_per_cycle == b.datapath_f32_per_cycle == 16

    def test_dram_bytes_per_cycle(self):
        hw = HardwareConfig(dram_bw_gib_s=12.8, freq_ghz=2.0)
        assert hw.dram_bytes_per_cycle == pytest.approx(12.8 * 2**30 / 2e9)

    def test_cache_byte_sizes(self):
        hw = HardwareConfig(l1_kib=64, l2_mib=1.0)
        assert hw.l1_bytes == 64 * 1024
        assert hw.l2_bytes == 1024 * 1024

    def test_label(self):
        assert HardwareConfig.paper2_rvv(2048, 16.0).label() == "2048 bits x 16 MB"

    def test_with_copies(self):
        a = HardwareConfig.paper2_rvv(512, 1.0)
        b = a.with_(l2_mib=4.0)
        assert a.l2_mib == 1.0 and b.l2_mib == 4.0 and b.vlen_bits == 512


class TestValidation:
    def test_rejects_bad_vlen(self):
        with pytest.raises(VectorLengthError):
            HardwareConfig(vlen_bits=300)

    def test_rejects_bad_lanes(self):
        with pytest.raises(ConfigError):
            HardwareConfig(vector_lanes=0)

    def test_rejects_bad_assoc(self):
        with pytest.raises(ConfigError):
            HardwareConfig(l2_assoc=3)

    def test_rejects_bad_style(self):
        with pytest.raises(ConfigError):
            HardwareConfig(style="integrated")


class TestPresets:
    def test_paper2_platform(self):
        hw = HardwareConfig.paper2_rvv(1024, 4.0)
        assert hw.style is VectorUnitStyle.INTEGRATED
        assert hw.l2_latency == 20
        assert not hw.software_prefetch

    def test_paper1_riscvv_is_decoupled(self):
        hw = HardwareConfig.paper1_riscvv(8192, 1.0, lanes=4)
        assert hw.style is VectorUnitStyle.DECOUPLED
        assert hw.vector_lanes == 4

    def test_paper1_armsve_vlen_cap(self):
        HardwareConfig.paper1_armsve(2048, 1.0)
        with pytest.raises(ConfigError, match="2048"):
            HardwareConfig.paper1_armsve(4096, 1.0)

    def test_a64fx(self):
        hw = HardwareConfig.a64fx()
        assert hw.vlen_bits == 512
        assert hw.out_of_order and hw.hardware_prefetch
        assert hw.line_bytes == 256


class TestDramModel:
    def test_transfer_cycles(self):
        d = DramModel(bytes_per_cycle=8.0)
        assert d.transfer_cycles(80) == 10.0

    def test_prefetch_reduces_penalty(self):
        d = DramModel(bytes_per_cycle=8.0, latency_cycles=100, mlp=4.0)
        assert d.miss_penalty_cycles(10, prefetch=True) < d.miss_penalty_cycles(10)

    def test_from_config(self):
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        d = DramModel.from_config(hw)
        assert d.latency_cycles == hw.dram_latency

    def test_validation(self):
        with pytest.raises(ConfigError):
            DramModel(bytes_per_cycle=0)
