"""Tests for the Winograd tile-size accuracy study."""

import pytest

from repro.algorithms.winograd_transforms import DEFAULT_POINTS, winograd_matrices
from repro.experiments.ablation_winograd_tiles import (
    ERROR_BUDGET,
    single_pass_error,
    stacked_error,
)
from repro.experiments.cli import run_experiment


class TestLargerTileConstruction:
    @pytest.mark.parametrize("m", [8, 10, 12])
    def test_large_tiles_exact_in_float64(self, rng, m):
        """The constructions themselves are exact; only fp32 breaks them."""
        import numpy as np

        wm = winograd_matrices(m, 3)
        d = rng.standard_normal(wm.alpha)
        g = rng.standard_normal(3)
        y = wm.AT @ ((wm.G @ g) * (wm.BT @ d))
        ref = np.array([(d[i : i + 3] * g).sum() for i in range(m)])
        np.testing.assert_allclose(y, ref, atol=1e-8)

    def test_default_points_cover_study(self):
        assert set(DEFAULT_POINTS) >= {2, 4, 6, 8, 10, 12}


class TestAccuracyStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ablation-winograd-tiles")

    def test_error_grows_with_tile_size(self, result):
        s = result.data["single"]
        assert s[12] > 100 * s[2]
        assert s[12] > s[8] > s[4]

    def test_f63_is_the_largest_admissible_tile(self, result):
        """The paper's design point: 8x8 tiles (F(6,3)), no larger."""
        assert result.data["largest_ok"] == 6

    def test_f63_well_within_budget(self, result):
        assert result.data["single"][6] < 0.5 * ERROR_BUDGET

    def test_stacked_error_same_conclusion(self, result):
        st = result.data["stacked"]
        assert st[12] > 10 * st[6]

    def test_single_pass_error_deterministic(self):
        assert single_pass_error(4, trials=50) == single_pass_error(4, trials=50)

    def test_stacked_error_finite(self):
        assert 0.0 <= stacked_error(6, depth=4) < 1.0
