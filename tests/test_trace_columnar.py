"""Property tests: columnar ``InstructionTrace`` vs a list-of-dataclasses
reference.

The columnar storage must be observationally a ``list[TraceEvent]`` plus a
running :class:`TraceStats`: random event sequences pushed through
``emit()`` must round-trip through ``len``/iteration/indexing identically,
and the statistics must match a straightforward recomputation — including
across the geometric-growth boundaries of the backing arrays, which the
tests force by shrinking the initial capacity to a single row.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.trace import (
    InstructionTrace,
    MemoryOp,
    ScalarOp,
    TraceStats,
    VectorOp,
)

names = st.sampled_from(["vle", "vse", "vfmacc.vf", "vfmv", "vsetvl", "op_x"])

vector_ops = st.builds(
    VectorOp,
    name=names,
    vl=st.integers(0, 256),
    sew_bits=st.sampled_from([8, 16, 32, 64]),
)
scalar_ops = st.builds(ScalarOp, name=names, count=st.integers(0, 1000))
memory_ops = st.builds(
    MemoryOp,
    name=names,
    base=st.integers(0, 1 << 40),
    elem_bytes=st.sampled_from([1, 2, 4, 8]),
    vl=st.integers(0, 256),
    stride=st.integers(-64, 64),
    is_store=st.booleans(),
    indices=st.one_of(
        st.none(),
        st.lists(st.integers(0, 1 << 16), min_size=1, max_size=8).map(tuple),
    ),
)
event_lists = st.lists(
    st.one_of(vector_ops, scalar_ops, memory_ops), max_size=120
)


def reference_stats(events) -> TraceStats:
    """Recompute TraceStats the obvious way from a list of events."""
    s = TraceStats()
    for e in events:
        if isinstance(e, VectorOp):
            s.vector_instrs += 1
            s.vector_elements += e.vl
        elif isinstance(e, MemoryOp):
            s.memory_instrs += 1
            s.vector_elements += e.vl
            nbytes = e.vl * e.elem_bytes
            s.memory_bytes += nbytes
            if e.is_store:
                s.store_bytes += nbytes
            else:
                s.load_bytes += nbytes
        elif isinstance(e, ScalarOp):
            s.scalar_instrs += e.count
    return s


def tiny_trace(mode: str = "full", capacity: int = 1) -> InstructionTrace:
    """A trace whose columns start at ``capacity`` rows, so that even short
    random sequences cross several growth boundaries."""
    t = InstructionTrace(mode=mode)
    t._alloc(capacity)
    return t


@given(event_lists)
def test_emit_round_trips_like_a_list(events):
    t = tiny_trace()
    for e in events:
        t.emit(e)
    assert len(t) == len(events)
    assert list(t) == events
    assert list(t.events) == events
    assert len(t.events) == len(events)
    assert [t.events[i] for i in range(len(events))] == events
    # negative indexing and slices behave like a list's
    assert [t.events[i - len(events)] for i in range(len(events))] == events
    assert t.events[: len(events) // 2] == events[: len(events) // 2]
    assert t.events[1::2] == events[1::2]
    assert t.stats == reference_stats(events)


@given(event_lists)
def test_counts_mode_same_stats_no_storage(events):
    t = tiny_trace(mode="counts")
    for e in events:
        t.emit(e)
    assert len(t) == 0
    assert list(t) == []
    assert t.stats == reference_stats(events)


@given(
    names,
    st.integers(0, 256),
    st.sampled_from([32, 64]),
    st.integers(0, 50),
)
def test_emit_vector_batched_equals_singles(name, vl, sew_bits, count):
    batched = tiny_trace()
    batched.emit_vector(name, vl, sew_bits, count)
    singles = tiny_trace()
    for _ in range(count):
        singles.emit_vector(name, vl, sew_bits)
    assert list(batched) == list(singles)
    assert batched.stats == singles.stats


@given(
    st.lists(
        st.tuples(
            names,
            st.integers(0, 1 << 40),  # base
            st.integers(0, 256),  # vl
            st.integers(-64, 64),  # stride
            st.booleans(),  # is_store
        ),
        min_size=1,
        max_size=40,
    ),
    st.sampled_from([4, 8]),
    st.booleans(),
)
def test_emit_memory_rows_equals_singles(rows, elem_bytes, uniform):
    batched = tiny_trace()
    singles = tiny_trace()
    if uniform:
        # scalar name/vl/stride/is_store broadcast over the bases array
        name, _, vl, stride, is_store = rows[0]
        rows = [(name, base, vl, stride, is_store) for _, base, *_ in rows]
        batched.emit_memory_rows(
            name,
            np.array([r[1] for r in rows], dtype=np.int64),
            elem_bytes,
            vl,
            stride,
            is_store,
        )
    else:
        batched.emit_memory_rows(
            np.array([r[0] for r in rows], dtype=object),
            np.array([r[1] for r in rows], dtype=np.int64),
            elem_bytes,
            np.array([r[2] for r in rows], dtype=np.int64),
            np.array([r[3] for r in rows], dtype=np.int64),
            np.array([r[4] for r in rows], dtype=bool),
        )
    for name, base, vl, stride, is_store in rows:
        singles.emit_memory(name, base, elem_bytes, vl, stride, is_store)
    assert list(batched) == list(singles)
    assert batched.stats == singles.stats
    # counts mode sees the identical statistics
    counted = tiny_trace(mode="counts")
    if uniform:
        name, _, vl, stride, is_store = rows[0]
        counted.emit_memory_rows(
            name,
            np.array([r[1] for r in rows], dtype=np.int64),
            elem_bytes,
            vl,
            stride,
            is_store,
        )
    else:
        counted.emit_memory_rows(
            np.array([r[0] for r in rows], dtype=object),
            np.array([r[1] for r in rows], dtype=np.int64),
            elem_bytes,
            np.array([r[2] for r in rows], dtype=np.int64),
            np.array([r[3] for r in rows], dtype=np.int64),
            np.array([r[4] for r in rows], dtype=bool),
        )
    assert counted.stats == singles.stats
    assert len(counted) == 0


@given(names, st.integers(0, 1000))
def test_emit_scalar_coalesces_counts(name, count):
    """One ``emit_scalar(name, n)`` equals n singles in *statistics* (the
    event stream records one coalesced ScalarOp — the documented contract)."""
    batched = tiny_trace()
    batched.emit_scalar(name, count)
    singles = tiny_trace()
    for _ in range(count):
        singles.emit_scalar(name)
    assert batched.stats == singles.stats
    assert list(batched) == [ScalarOp(name, count)]


@given(event_lists, st.sampled_from([1, 2, 3, 1024]))
def test_growth_preserves_prefix(events, capacity):
    """Whatever the starting capacity, the decoded sequence is the same."""
    t = tiny_trace(capacity=capacity)
    for e in events:
        t.emit(e)
    assert list(t) == events


@given(event_lists)
def test_clear_resets(events):
    t = tiny_trace()
    for e in events:
        t.emit(e)
    t.events.append(object())
    t.clear()
    assert len(t) == 0
    assert list(t) == []
    assert t.stats == TraceStats()
    # trace remains usable after clear
    for e in events:
        t.emit(e)
    assert list(t) == events


def test_foreign_append_round_trips_without_stats():
    t = tiny_trace()
    t.emit(VectorOp("vfmacc.vf", 8, 32))
    marker = object()
    t.events.append(marker)
    t.emit(ScalarOp("loop", 3))
    assert len(t) == 3
    decoded = list(t)
    assert decoded[0] == VectorOp("vfmacc.vf", 8, 32)
    assert decoded[1] is marker
    assert decoded[2] == ScalarOp("loop", 3)
    # foreign rows never contribute to statistics
    assert t.stats == reference_stats([decoded[0], decoded[2]])


def test_emit_rejects_unknown_event_type():
    t = tiny_trace()
    with pytest.raises(TypeError):
        t.emit("not an event")


def test_mode_validation():
    with pytest.raises(ValueError):
        InstructionTrace(mode="bogus")
    assert InstructionTrace(enabled=False).mode == "counts"
    assert InstructionTrace().mode == "full"
