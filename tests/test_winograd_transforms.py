"""Tests for the Cook-Toom Winograd transform generator."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.winograd_transforms import (
    DEFAULT_POINTS,
    WinogradMatrices,
    f63,
    winograd_1d,
    winograd_matrices,
)
from repro.errors import AlgorithmError


def valid_correlation(d: np.ndarray, g: np.ndarray) -> np.ndarray:
    """The oracle: y[i] = sum_j d[i+j] * g[j]."""
    m = len(d) - len(g) + 1
    return np.array([(d[i : i + len(g)] * g).sum() for i in range(m)])


class TestConstruction:
    @pytest.mark.parametrize("m", [2, 4, 6])
    def test_shapes(self, m):
        wm = winograd_matrices(m, 3)
        alpha = m + 2
        assert wm.AT.shape == (m, alpha)
        assert wm.G.shape == (alpha, 3)
        assert wm.BT.shape == (alpha, alpha)

    @pytest.mark.parametrize("m", [2, 4, 6])
    def test_exact_on_random_inputs(self, rng, m):
        wm = winograd_matrices(m, 3)
        for _ in range(10):
            d = rng.standard_normal(wm.alpha)
            g = rng.standard_normal(3)
            np.testing.assert_allclose(
                winograd_1d(d, g, wm), valid_correlation(d, g), atol=1e-10
            )

    def test_f63_multiplication_count(self):
        """F(6,3) needs alpha=8 multiplies per output strip vs 18 naive."""
        wm = f63()
        assert wm.alpha == 8 and wm.m == 6

    def test_f63_cached(self):
        assert f63() is f63()

    def test_custom_points(self):
        pts = (Fraction(0), Fraction(1), Fraction(-1))
        wm = winograd_matrices(3, 2, points=pts)
        d = np.arange(4.0)
        g = np.array([2.0, -1.0])
        np.testing.assert_allclose(
            winograd_1d(d, g, wm), valid_correlation(d, g), atol=1e-10
        )

    def test_bt_integer_rows_for_f23(self):
        """F(2,3) with points {0,1,-1} has the classic integer B^T."""
        wm = winograd_matrices(2, 3)
        assert np.allclose(wm.BT, np.round(wm.BT))


class TestValidation:
    def test_wrong_point_count(self):
        with pytest.raises(AlgorithmError, match="needs"):
            winograd_matrices(2, 3, points=(Fraction(0), Fraction(1)))

    def test_duplicate_points(self):
        with pytest.raises(AlgorithmError, match="distinct"):
            winograd_matrices(2, 3, points=(Fraction(0), Fraction(0), Fraction(1)))

    def test_no_defaults_for_odd_sizes(self):
        with pytest.raises(AlgorithmError, match="no default points"):
            winograd_matrices(3, 5)

    def test_bad_m_r(self):
        with pytest.raises(AlgorithmError):
            winograd_matrices(0, 3)

    def test_winograd_1d_shape_check(self):
        wm = f63()
        with pytest.raises(AlgorithmError):
            winograd_1d(np.zeros(7), np.zeros(3), wm)

    def test_default_points_counts(self):
        for m, pts in DEFAULT_POINTS.items():
            assert len(pts) == m + 3 - 2


class TestNumericalStability:
    def test_f63_fp32_accuracy(self, rng):
        """The 8x8 tile stays accurate in fp32 — the paper's reason for
        fixing the tile size and growing channels instead."""
        wm = f63()
        at = wm.AT.astype(np.float32)
        g_mat = wm.G.astype(np.float32)
        bt = wm.BT.astype(np.float32)
        errs = []
        for _ in range(50):
            d = rng.uniform(-1, 1, wm.alpha).astype(np.float32)
            g = rng.uniform(-1, 1, 3).astype(np.float32)
            y = at @ ((g_mat @ g) * (bt @ d))
            errs.append(np.abs(y - valid_correlation(d, g)).max())
        assert max(errs) < 1e-4

    @given(
        d=st.lists(st.floats(-2, 2), min_size=8, max_size=8),
        g=st.lists(st.floats(-2, 2), min_size=3, max_size=3),
    )
    @settings(max_examples=50)
    def test_f63_property(self, d, g):
        """Winograd F(6,3) equals direct correlation for arbitrary inputs."""
        d = np.asarray(d)
        g = np.asarray(g)
        np.testing.assert_allclose(
            winograd_1d(d, g, f63()), valid_correlation(d, g), atol=1e-8
        )
