"""Shared fixtures and a suite-wide hang watchdog for the test suite."""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest
from hypothesis import settings

# fully deterministic property tests: same examples on every run
settings.register_profile("deterministic", derandomize=True)
settings.load_profile("deterministic")

from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig

#: Per-test hang cap in seconds.  The chaos suite injects worker hangs on
#: purpose; a regression that defeats the engine's timeout/retry machinery
#: must fail the test, not wedge the whole suite (or a CI job) forever.
SUITE_TIMEOUT_S = 300


def pytest_configure(config) -> None:
    if config.pluginmanager.hasplugin("timeout"):
        # CI installs pytest-timeout (the ``dev`` extra); it handles
        # threads and subprocesses better than the SIGALRM fallback below.
        if getattr(config.option, "timeout", None) is None:
            config.option.timeout = SUITE_TIMEOUT_S


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """SIGALRM fallback watchdog when pytest-timeout is unavailable."""
    use_alarm = (
        not item.config.pluginmanager.hasplugin("timeout")
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the suite-wide {SUITE_TIMEOUT_S}s watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(SUITE_TIMEOUT_S)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_spec() -> ConvSpec:
    """A small 3x3/stride-1 layer every algorithm supports."""
    return ConvSpec(ic=5, oc=7, ih=13, iw=11, kh=3, kw=3, stride=1, index=1)


@pytest.fixture
def small_tensors(rng, small_spec):
    x = rng.standard_normal((small_spec.ic, small_spec.ih, small_spec.iw)).astype(
        np.float32
    )
    w = (0.3 * rng.standard_normal(
        (small_spec.oc, small_spec.ic, small_spec.kh, small_spec.kw)
    )).astype(np.float32)
    return x, w


@pytest.fixture
def baseline_hw() -> HardwareConfig:
    return HardwareConfig.paper2_rvv(512, 1.0)


@pytest.fixture(scope="session")
def selection_dataset():
    """The 448-point dataset (built once per session; ~0.3 s)."""
    from repro.selection.dataset import build_dataset

    return build_dataset()


@pytest.fixture(scope="session")
def trained_selector(selection_dataset):
    """A trained AlgorithmSelector (cross-validated once per session)."""
    from repro.selection.predictor import AlgorithmSelector

    selector = AlgorithmSelector(n_estimators=60)
    selector.train(selection_dataset)
    return selector
