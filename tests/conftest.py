"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

# fully deterministic property tests: same examples on every run
settings.register_profile("deterministic", derandomize=True)
settings.load_profile("deterministic")

from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_spec() -> ConvSpec:
    """A small 3x3/stride-1 layer every algorithm supports."""
    return ConvSpec(ic=5, oc=7, ih=13, iw=11, kh=3, kw=3, stride=1, index=1)


@pytest.fixture
def small_tensors(rng, small_spec):
    x = rng.standard_normal((small_spec.ic, small_spec.ih, small_spec.iw)).astype(
        np.float32
    )
    w = (0.3 * rng.standard_normal(
        (small_spec.oc, small_spec.ic, small_spec.kh, small_spec.kw)
    )).astype(np.float32)
    return x, w


@pytest.fixture
def baseline_hw() -> HardwareConfig:
    return HardwareConfig.paper2_rvv(512, 1.0)


@pytest.fixture(scope="session")
def selection_dataset():
    """The 448-point dataset (built once per session; ~0.3 s)."""
    from repro.selection.dataset import build_dataset

    return build_dataset()


@pytest.fixture(scope="session")
def trained_selector(selection_dataset):
    """A trained AlgorithmSelector (cross-validated once per session)."""
    from repro.selection.predictor import AlgorithmSelector

    selector = AlgorithmSelector(n_estimators=60)
    selector.train(selection_dataset)
    return selector
