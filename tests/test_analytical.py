"""Tests for the analytical timing model: phases, cache model, engine."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.simulator.analytical.cachemodel import (
    effective_l2_bytes,
    residency,
    stream_dram_bytes,
    stream_l2_bytes,
)
from repro.simulator.analytical.calibration import DEFAULT_CALIBRATION
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.units import MiB


def hw(l2=1.0, vlen=512, **kw):
    return HardwareConfig.paper2_rvv(vlen, l2).with_(**kw)


class TestDataStream:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DataStream("s", bytes=-1)
        with pytest.raises(ConfigError):
            DataStream("s", bytes=1, passes=0.5)
        with pytest.raises(ConfigError):
            DataStream("s", bytes=1, reuse_ws=-1)

    def test_residency_bounds(self):
        assert residency(0, 100) == 1.0
        assert residency(50, 100) == 1.0
        assert residency(200, 100) == 0.5

    def test_single_pass_is_compulsory_only(self):
        s = DataStream("s", bytes=1000.0)
        assert stream_dram_bytes(s, hw()) == 1000.0

    def test_resident_reuse_costs_nothing_extra(self):
        s = DataStream("s", bytes=1000.0, passes=10.0, reuse_ws=1000.0)
        assert stream_dram_bytes(s, hw(l2=64.0)) == pytest.approx(1000.0)

    def test_thrashing_reuse_refetches(self):
        big = 100 * MiB
        s = DataStream("s", bytes=float(big), passes=3.0, reuse_ws=float(big))
        traffic = stream_dram_bytes(s, hw(l2=1.0))
        assert traffic > 2.9 * big

    def test_resident_source_discounts_compulsory(self):
        s_cold = DataStream("s", bytes=float(MiB))
        s_warm = DataStream("s", bytes=float(MiB), resident_source=True)
        cfg = hw(l2=64.0)
        assert stream_dram_bytes(s_warm, cfg) < stream_dram_bytes(s_cold, cfg)
        # but a producer bigger than the cache still mostly misses
        huge = DataStream("s", bytes=float(200 * MiB), resident_source=True)
        assert stream_dram_bytes(huge, hw(l2=1.0)) > 0.99 * 200 * MiB

    def test_dram_traffic_monotone_in_cache_size(self):
        s = DataStream("s", bytes=float(8 * MiB), passes=5.0,
                       reuse_ws=float(8 * MiB))
        sizes = [1.0, 4.0, 16.0, 64.0]
        traffic = [stream_dram_bytes(s, hw(l2=c)) for c in sizes]
        assert traffic == sorted(traffic, reverse=True)

    def test_l2_traffic_counts_all_passes(self):
        s = DataStream("s", bytes=100.0, passes=4.0)
        assert stream_l2_bytes(s) == 400.0

    @given(
        nbytes=st.floats(1.0, 1e9),
        passes=st.floats(1.0, 20.0),
        ws=st.floats(0.0, 1e9),
    )
    @settings(max_examples=50)
    def test_dram_traffic_bounds(self, nbytes, passes, ws):
        """compulsory <= traffic <= bytes * passes, for any stream."""
        s = DataStream("s", bytes=nbytes, passes=passes, reuse_ws=ws)
        traffic = stream_dram_bytes(s, hw())
        assert nbytes - 1e-6 <= traffic <= nbytes * passes + 1e-6


class TestPhase:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Phase("p", vector_ops=-1)
        with pytest.raises(ConfigError):
            Phase("p", nonunit_fraction=1.5)
        with pytest.raises(ConfigError):
            Phase("p", vector_ops=10)  # missing active
        with pytest.raises(ConfigError):
            Phase("p", vmem_ops=10)

    def test_total_stream_bytes(self):
        p = Phase("p", streams=(DataStream("a", 10.0), DataStream("b", 5.0)))
        assert p.total_stream_bytes == 15.0


class TestEngine:
    def test_compute_bound_phase(self):
        model = AnalyticalTimingModel(hw())
        p = Phase("p", vector_ops=1000.0, vector_active=16.0)
        res = model.phase_cycles(p)
        assert res.bound == "vector"
        assert res.vector_cycles == pytest.approx(1000.0)

    def test_memory_bound_phase(self):
        model = AnalyticalTimingModel(hw())
        p = Phase("p", vector_ops=10.0, vector_active=16.0,
                  streams=(DataStream("s", float(100 * MiB)),))
        res = model.phase_cycles(p)
        assert res.bound == "dram"

    def test_scalar_lane_is_parallel(self):
        """Scalar work below the vector time is hidden (max, not sum)."""
        model = AnalyticalTimingModel(hw())
        fast = model.phase_cycles(
            Phase("p", vector_ops=1000.0, vector_active=16.0, scalar_ops=500.0)
        )
        none = model.phase_cycles(
            Phase("p", vector_ops=1000.0, vector_active=16.0)
        )
        assert fast.cycles == pytest.approx(none.cycles)

    def test_partial_lanes_dont_speed_up(self):
        """An instruction with few active elements still costs a full issue."""
        model = AnalyticalTimingModel(hw(vlen=4096))
        full = model.phase_cycles(Phase("p", vector_ops=100.0, vector_active=128.0))
        partial = model.phase_cycles(Phase("p", vector_ops=100.0, vector_active=4.0))
        assert partial.cycles == pytest.approx(full.cycles)

    def test_nonunit_memory_costs_more(self):
        model = AnalyticalTimingModel(hw())
        unit = model.phase_cycles(
            Phase("p", vmem_ops=1000.0, vmem_active=16.0, nonunit_fraction=0.0)
        )
        gather = model.phase_cycles(
            Phase("p", vmem_ops=1000.0, vmem_active=16.0, nonunit_fraction=1.0)
        )
        assert gather.vector_cycles > unit.vector_cycles

    def test_prefetch_reduces_latency_adder(self):
        p = Phase("p", streams=(DataStream("s", float(10 * MiB)),))
        plain = AnalyticalTimingModel(hw()).phase_cycles(p)
        pf = AnalyticalTimingModel(hw().with_(software_prefetch=True)).phase_cycles(p)
        assert pf.latency_cycles < plain.latency_cycles
        assert pf.dram_cycles == pytest.approx(plain.dram_cycles)

    def test_scalar_stream_latency_exposure(self):
        """Scalar-consumed streams expose full miss latency."""
        vec = Phase("p", streams=(DataStream("s", float(10 * MiB)),))
        scal = Phase(
            "p", streams=(DataStream("s", float(10 * MiB), scalar_access=True),)
        )
        model = AnalyticalTimingModel(hw())
        assert (
            model.phase_cycles(scal).latency_cycles
            > model.phase_cycles(vec).latency_cycles
        )

    def test_evaluate_sums_phases(self):
        model = AnalyticalTimingModel(hw())
        phases = [
            Phase("a", vector_ops=100.0, vector_active=16.0),
            Phase("b", scalar_ops=50.0),
        ]
        lc = model.evaluate("algo", phases)
        assert lc.cycles == pytest.approx(
            sum(model.phase_cycles(p).cycles for p in phases)
        )
        assert lc.algorithm == "algo"
        assert set(lc.breakdown()) == {"a", "b"}

    def test_dominant_bound(self):
        model = AnalyticalTimingModel(hw())
        lc = model.evaluate(
            "a",
            [Phase("big", vector_ops=1e6, vector_active=16.0),
             Phase("small", scalar_ops=10.0)],
        )
        assert lc.dominant_bound() == "vector"

    def test_seconds_conversion(self):
        model = AnalyticalTimingModel(hw())
        lc = model.evaluate("a", [Phase("p", scalar_ops=2e9)])
        assert lc.seconds(2.0) >= 1.0

    def test_effective_l2_below_physical(self):
        cfg = hw(l2=4.0)
        assert effective_l2_bytes(cfg) < cfg.l2_bytes


class TestEngineProperties:
    """Scale and monotonicity properties of the analytical engine."""

    @given(scale=st.integers(2, 16))
    @settings(max_examples=20)
    def test_compute_scales_linearly(self, scale):
        model = AnalyticalTimingModel(hw())
        base = Phase("p", vector_ops=1000.0, vector_active=16.0)
        scaled = Phase("p", vector_ops=1000.0 * scale, vector_active=16.0)
        a = model.phase_cycles(base)
        b = model.phase_cycles(scaled)
        assert b.vector_cycles == pytest.approx(scale * a.vector_cycles)

    @given(scale=st.integers(2, 16))
    @settings(max_examples=20)
    def test_dram_traffic_scales_linearly(self, scale):
        model = AnalyticalTimingModel(hw())
        base = Phase("p", streams=(DataStream("s", 1e6),))
        scaled = Phase("p", streams=(DataStream("s", 1e6 * scale),))
        a = model.phase_cycles(base)
        b = model.phase_cycles(scaled)
        assert b.dram_cycles == pytest.approx(scale * a.dram_cycles)

    @given(
        vops=st.floats(1, 1e7),
        bytes_=st.floats(1, 1e8),
        scalar=st.floats(0, 1e7),
    )
    @settings(max_examples=40)
    def test_cycles_at_least_every_lane(self, vops, bytes_, scalar):
        """The max() composition: total >= each resource's own time."""
        model = AnalyticalTimingModel(hw())
        p = Phase("p", vector_ops=vops, vector_active=16.0,
                  scalar_ops=scalar, streams=(DataStream("s", bytes_),))
        pc = model.phase_cycles(p)
        assert pc.cycles >= pc.vector_cycles
        assert pc.cycles >= pc.scalar_cycles
        assert pc.cycles >= pc.dram_cycles

    @given(l2=st.sampled_from([0.5, 1.0, 2.0, 8.0, 32.0, 128.0]))
    @settings(max_examples=12)
    def test_phase_cycles_monotone_in_cache(self, l2):
        """A reusing stream's phase never slows down with more cache."""
        model_small = AnalyticalTimingModel(hw(l2=l2))
        model_big = AnalyticalTimingModel(hw(l2=l2 * 2))
        p = Phase("p", streams=(
            DataStream("s", 4e6, passes=6.0, reuse_ws=4e6),
        ))
        assert (
            model_big.phase_cycles(p).cycles
            <= model_small.phase_cycles(p).cycles + 1e-9
        )
