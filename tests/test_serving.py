"""Tests for Pareto utilities, network-time policies, and co-location."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ExperimentError
from repro.nn.models import vgg16_conv_specs
from repro.serving import (
    ColocationScenario,
    evaluate_colocation,
    network_cycles,
)
from repro.serving.pareto import (
    ParetoPoint,
    is_dominated,
    pareto_frontier,
    pareto_optimal,
)
from repro.simulator.hwconfig import HardwareConfig


class TestPareto:
    def test_dominance(self):
        a = ParetoPoint(cost=1.0, value=2.0)
        b = ParetoPoint(cost=2.0, value=1.0)
        assert a.dominates(b) and not b.dominates(a)

    def test_equal_points_dont_dominate(self):
        a = ParetoPoint(1.0, 1.0)
        b = ParetoPoint(1.0, 1.0)
        assert not a.dominates(b) and not b.dominates(a)

    def test_frontier_simple(self):
        pts = [ParetoPoint(1, 1), ParetoPoint(2, 3), ParetoPoint(3, 2),
               ParetoPoint(1.5, 0.5)]
        frontier = pareto_frontier(pts)
        assert [(p.cost, p.value) for p in frontier] == [(1, 1), (2, 3)]

    def test_frontier_empty_rejected(self):
        with pytest.raises(ExperimentError):
            pareto_frontier([])

    def test_pareto_optimal_knee(self):
        pts = [ParetoPoint(1, 1), ParetoPoint(2, 10), ParetoPoint(10, 11)]
        assert pareto_optimal(pts).cost == 2

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100), st.floats(0.1, 100)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40)
    def test_frontier_properties(self, raw):
        """No frontier point is dominated; every dropped point is dominated."""
        pts = [ParetoPoint(c, v) for c, v in raw]
        frontier = pareto_frontier(pts)
        for p in frontier:
            assert not is_dominated(p, frontier)
        kept = {(p.cost, p.value) for p in frontier}
        for p in pts:
            if (p.cost, p.value) not in kept:
                assert is_dominated(p, frontier)

    def test_frontier_sorted_by_cost(self):
        pts = [ParetoPoint(c, v) for c, v in [(5, 5), (1, 1), (3, 3)]]
        costs = [p.cost for p in pareto_frontier(pts)]
        assert costs == sorted(costs)


class TestNetworkCycles:
    @pytest.fixture(scope="class")
    def specs(self):
        return vgg16_conv_specs()

    @pytest.fixture(scope="class")
    def hw(self):
        return HardwareConfig.paper2_rvv(512, 1.0)

    def test_optimal_below_singles(self, specs, hw):
        opt = network_cycles(specs, hw, "optimal").total_cycles
        for name in ("direct", "im2col_gemm3", "im2col_gemm6", "winograd"):
            assert opt <= network_cycles(specs, hw, name).total_cycles

    def test_winograd_star_fallback(self, hw):
        """Winograd policy on a 1x1 layer silently uses GEMM-6."""
        from repro.nn.models import yolov3_conv_specs

        specs = yolov3_conv_specs()
        t = network_cycles(specs, hw, "winograd")
        one_by_one = [s.index for s in specs if s.kh == 1]
        for idx in one_by_one:
            assert t.chosen[idx] == "im2col_gemm6"

    def test_predicted_policy_needs_selector(self, specs, hw):
        with pytest.raises(ExperimentError):
            network_cycles(specs, hw, "predicted")

    def test_predicted_close_to_optimal(self, specs, hw, trained_selector):
        opt = network_cycles(specs, hw, "optimal").total_cycles
        pred = network_cycles(
            specs, hw, "predicted", selector=trained_selector
        ).total_cycles
        assert pred <= 1.10 * opt  # paper: at most 10% relative error

    def test_unknown_policy(self, specs, hw):
        with pytest.raises(ExperimentError):
            network_cycles(specs, hw, "fft")

    def test_seconds(self, specs, hw):
        t = network_cycles(specs, hw, "optimal")
        assert t.seconds(2.0) == pytest.approx(t.total_cycles / 2e9)


class TestColocation:
    def test_partitioning(self):
        s = ColocationScenario(cores=4, vlen_bits=512, shared_l2_mib=16.0,
                               instances=4)
        assert s.l2_per_instance_mib == 4.0

    def test_more_instances_than_cores_rejected(self):
        with pytest.raises(ConfigError):
            ColocationScenario(cores=2, vlen_bits=512, shared_l2_mib=4.0,
                               instances=4)

    def test_partition_floor(self):
        with pytest.raises(ConfigError, match="0.25"):
            ColocationScenario(cores=64, vlen_bits=512, shared_l2_mib=1.0,
                               instances=64)

    def test_throughput_scales_with_instances(self):
        specs = vgg16_conv_specs()
        one = evaluate_colocation(
            ColocationScenario(cores=1, vlen_bits=512, shared_l2_mib=16.0,
                               instances=1),
            specs,
        )
        four = evaluate_colocation(
            ColocationScenario(cores=4, vlen_bits=512, shared_l2_mib=64.0,
                               instances=4),
            specs,
        )
        # same per-instance L2 slice -> ~4x throughput on 4 cores
        assert four.throughput_images_per_cycle == pytest.approx(
            4 * one.throughput_images_per_cycle, rel=1e-6
        )
        assert four.area_mm2 > one.area_mm2

    def test_cache_contention_hurts(self):
        """Same chip, more instances sharing the L2: per-image time grows."""
        specs = vgg16_conv_specs()
        alone = evaluate_colocation(
            ColocationScenario(cores=4, vlen_bits=512, shared_l2_mib=16.0,
                               instances=1),
            specs,
        )
        packed = evaluate_colocation(
            ColocationScenario(cores=4, vlen_bits=512, shared_l2_mib=16.0,
                               instances=4),
            specs,
        )
        assert packed.cycles_per_image >= alone.cycles_per_image
        # ... but total throughput still wins
        assert (
            packed.throughput_images_per_cycle
            > alone.throughput_images_per_cycle
        )

    def test_throughput_per_area_and_ips(self):
        specs = vgg16_conv_specs()
        r = evaluate_colocation(
            ColocationScenario(cores=1, vlen_bits=512, shared_l2_mib=1.0,
                               instances=1),
            specs,
        )
        assert r.throughput_per_area > 0
        assert r.images_per_second(2.0) == pytest.approx(
            r.throughput_images_per_cycle * 2e9
        )
