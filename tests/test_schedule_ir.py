"""Unit tests for the loop-nest schedule IR and the kernel templates."""

import pytest

from repro.errors import ScheduleError
from repro.nn.layer import ConvSpec
from repro.schedule.ir import (
    VECTOR_REGS,
    LoopNest,
    Reorder,
    Tile,
    Unroll,
    Vectorize,
    apply_transforms,
    base_axis_of,
    transforms_token,
)
from repro.schedule.templates import (
    TEMPLATES,
    gemm6_block_candidates,
    get_template,
)
from repro.simulator.hwconfig import HardwareConfig

HW = HardwareConfig.paper2_rvv(512, 1.0)
SPEC = ConvSpec(ic=64, oc=128, ih=56, iw=56, kh=3, kw=3, index=3)


def nest3(i=8, j=16, k=32):
    return LoopNest(name="t", axes=("i", "j", "k"), extents=(i, j, k))


class TestLoopNest:
    def test_extent_lookup(self):
        assert nest3().extent("j") == 16

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ScheduleError, match="axes but"):
            LoopNest(name="t", axes=("i", "j"), extents=(4,))

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ScheduleError, match="duplicate"):
            LoopNest(name="t", axes=("i", "i"), extents=(4, 4))

    def test_dotted_base_axis_rejected(self):
        with pytest.raises(ScheduleError, match="may not contain"):
            LoopNest(name="t", axes=("i.o",), extents=(4,))

    def test_nonpositive_extent_rejected(self):
        with pytest.raises(ScheduleError, match=">= 1"):
            LoopNest(name="t", axes=("i",), extents=(0,))

    def test_base_axis_of(self):
        assert base_axis_of("i") == "i"
        assert base_axis_of("i.o") == "i"
        assert base_axis_of("i.i.i") == "i"


class TestTile:
    def test_split_extents(self):
        s = apply_transforms(nest3(), [Tile("k", 10)])
        assert s.axes == ("i", "j", "k.o", "k.i")
        # ceil(32 / 10) outer iterations, ragged last inner trip implicit
        assert s.extent("k.o") == 4
        assert s.extent("k.i") == 10

    def test_factor_larger_than_extent_clamps(self):
        s = apply_transforms(nest3(), [Tile("i", 64)])
        assert s.extent("i.o") == 1
        assert s.extent("i.i") == 8

    def test_nested_tiling(self):
        s = apply_transforms(nest3(), [Tile("k", 16), Tile("k.i", 4)])
        assert s.axes == ("i", "j", "k.o", "k.i.o", "k.i.i")
        assert s.tile_factor("k") == 4

    def test_unknown_axis_rejected(self):
        with pytest.raises(ScheduleError, match="unknown axis"):
            apply_transforms(nest3(), [Tile("z", 4)])

    def test_bad_factor_rejected(self):
        with pytest.raises(ScheduleError, match="must be >= 1"):
            apply_transforms(nest3(), [Tile("i", 0)])

    def test_double_tile_rejected(self):
        # the first tile consumes the axis name: re-tiling "i" is unknown
        with pytest.raises(ScheduleError, match="unknown axis"):
            apply_transforms(nest3(), [Tile("i", 4), Tile("i", 2)])

    def test_tile_of_vectorized_axis_rejected(self):
        with pytest.raises(ScheduleError, match="vectorized"):
            apply_transforms(nest3(), [Vectorize("k"), Tile("k", 4)])

    def test_tile_of_unrolled_axis_rejected(self):
        with pytest.raises(ScheduleError, match="unrolled"):
            apply_transforms(nest3(), [Unroll("k"), Tile("k", 4)])


class TestReorder:
    def test_permutes_axes_and_extents(self):
        s = apply_transforms(nest3(), [Reorder(("k", "i", "j"))])
        assert s.axes == ("k", "i", "j")
        assert s.extents == (32, 8, 16)

    def test_non_permutation_rejected(self):
        with pytest.raises(ScheduleError, match="not a permutation"):
            apply_transforms(nest3(), [Reorder(("i", "j"))])
        with pytest.raises(ScheduleError, match="not a permutation"):
            apply_transforms(nest3(), [Reorder(("i", "j", "j"))])


class TestUnrollVectorize:
    def test_unroll_marks_axis(self):
        s = apply_transforms(nest3(), [Unroll("i")])
        assert s.unrolled == ("i",)
        assert s.unroll_factor("i") == 8
        assert s.total_unroll() == 8

    def test_double_unroll_rejected(self):
        with pytest.raises(ScheduleError, match="already unrolled"):
            apply_transforms(nest3(), [Unroll("i"), Unroll("i")])

    def test_unroll_of_vectorized_axis_rejected(self):
        with pytest.raises(ScheduleError, match="vectorized"):
            apply_transforms(nest3(), [Vectorize("k"), Unroll("k")])

    def test_vectorize_innermost_only(self):
        with pytest.raises(ScheduleError, match="innermost"):
            apply_transforms(nest3(), [Vectorize("i")])

    def test_second_vectorize_rejected(self):
        with pytest.raises(ScheduleError, match="already vectorized"):
            apply_transforms(nest3(), [Vectorize("k"), Vectorize("j")])

    def test_vectorize_of_unrolled_axis_rejected(self):
        with pytest.raises(ScheduleError, match="unrolled"):
            apply_transforms(nest3(), [Unroll("k"), Vectorize("k")])

    def test_register_budget_enforced(self):
        nest = LoopNest(name="t", axes=("i", "j"), extents=(32, 8))
        with pytest.raises(ScheduleError, match="register budget"):
            apply_transforms(nest, [Unroll("i")])
        # VECTOR_REGS - 4 accumulators is exactly the cap
        ok = LoopNest(name="t", axes=("i", "j"), extents=(VECTOR_REGS - 4, 8))
        assert apply_transforms(ok, [Unroll("i")]).total_unroll() == 28


class TestTokens:
    def test_transform_tokens(self):
        seq = (Tile("i", 4), Reorder(("i.o", "j", "k", "i.i")), Unroll("i.i"))
        assert transforms_token(seq) == (
            "tile(i,4);reorder(i.o,j,k,i.i);unroll(i.i)"
        )

    def test_describe_marks_unrolled_and_vector(self):
        s = apply_transforms(nest3(), [Unroll("i"), Vectorize("k")])
        text = s.describe()
        assert "i[*]:8" in text and "k[v]:32" in text


class TestTemplates:
    @pytest.mark.parametrize("name", sorted(TEMPLATES))
    def test_default_schedule_is_legal(self, name):
        template = get_template(name)
        params = template.default_params(SPEC, HW)
        sched = template.scheduled(SPEC, HW, params)
        assert sched.total_unroll() <= VECTOR_REGS - 4
        if sched.vector_axis is not None:
            assert sched.axes[-1] == sched.vector_axis

    @pytest.mark.parametrize("name", sorted(TEMPLATES))
    def test_candidates_default_first_and_legal(self, name):
        template = get_template(name)
        candidates = template.candidate_params(SPEC, HW)
        assert candidates[0] == template.default_params(SPEC, HW)
        for params in candidates:
            template.scheduled(SPEC, HW, params)  # must not raise

    def test_direct_default_matches_kernel_structure(self):
        template = get_template("direct")
        sched = template.scheduled(SPEC, HW, {"uw": 24})
        assert sched.vector_axis == "oc.i"
        assert sched.extent("oc.i") == HW.vlmax_f32
        # 56-wide rows clamp the 24-row unroll to an even 14-row split
        assert sched.unroll_factor("ow") <= 24

    def test_gemm6_bm32_register_tiles_instead_of_failing(self):
        template = get_template("im2col_gemm6")
        sched = template.scheduled(
            SPEC, HW, {"bm": 32, "bn": 512, "bk": 128}
        )
        assert sched.total_unroll() <= VECTOR_REGS - 4

    def test_gemm6_candidates_respect_l2_filter(self):
        for bm, bn, bk in gemm6_block_candidates(HW)[1:]:
            assert bk * bn * 4 <= HW.l2_bytes

    def test_unknown_template_rejected(self):
        with pytest.raises(ScheduleError, match="no schedule template"):
            get_template("fft")

    def test_wrong_params_rejected(self):
        with pytest.raises(ScheduleError, match="params must be exactly"):
            get_template("direct").lower({"bogus": 1})
