"""Tests of the CI perf-regression gate (``scripts/check_bench_regression``).

The gate compares machine-normalized speedup ratios recorded by the
benchmark suites against committed floors in ``benchmarks/baselines.json``
and must demonstrably fail on a 25% slowdown while tolerating small noise.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_bench_regression.py"
BASELINES_FILE = REPO / "benchmarks" / "baselines.json"


def _load_gate():
    spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


gate = _load_gate()


@pytest.fixture
def baselines() -> dict[str, float]:
    data = json.loads(BASELINES_FILE.read_text())
    return {k: v for k, v in data.items() if not k.startswith("_")}


class TestCheckFunction:
    def test_passes_at_baseline(self, baselines):
        assert gate.check(dict(baselines), baselines) == []

    def test_passes_small_noise_regression(self, baselines):
        measured = {k: v * 0.90 for k, v in baselines.items()}  # -10%
        assert gate.check(measured, baselines) == []

    def test_fails_injected_25pct_slowdown(self, baselines):
        measured = {k: v * 0.75 for k, v in baselines.items()}  # -25%
        failures = gate.check(measured, baselines)
        assert len(failures) == len(baselines)

    def test_fails_single_regressed_metric(self, baselines):
        name = sorted(baselines)[0]
        measured = dict(baselines)
        measured[name] = baselines[name] * 0.75
        failures = gate.check(measured, baselines)
        assert len(failures) == 1 and name in failures[0]

    def test_missing_metric_fails_loudly(self, baselines):
        name = sorted(baselines)[0]
        measured = {k: v for k, v in baselines.items() if k != name}
        failures = gate.check(measured, baselines)
        assert len(failures) == 1 and "no measured value" in failures[0]

    def test_extra_measured_metric_is_ignored(self, baselines):
        measured = dict(baselines)
        measured["new.metric_without_baseline"] = 1.0
        assert gate.check(measured, baselines) == []

    def test_improvements_pass(self, baselines):
        measured = {k: v * 10.0 for k, v in baselines.items()}
        assert gate.check(measured, baselines) == []

    def test_comment_keys_are_not_metrics(self):
        assert gate.check({}, {"_comment": "not a metric"}) == []


class TestCLI:
    def _run(self, tmp_path, measured: dict[str, float]) -> subprocess.CompletedProcess:
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps(measured))
        return subprocess.run(
            [sys.executable, str(SCRIPT), str(metrics)],
            capture_output=True, text=True, cwd=REPO,
        )

    def test_cli_passes_on_healthy_metrics(self, tmp_path, baselines):
        result = self._run(tmp_path, {k: v * 2 for k, v in baselines.items()})
        assert result.returncode == 0, result.stderr
        assert "passed" in result.stdout

    def test_cli_fails_on_injected_slowdown(self, tmp_path, baselines):
        result = self._run(tmp_path, {k: v * 0.75 for k, v in baselines.items()})
        assert result.returncode == 1
        assert "FAILED" in result.stderr

    def test_cli_fails_on_missing_metrics_file(self, tmp_path):
        result = subprocess.run(
            [sys.executable, str(SCRIPT), str(tmp_path / "nope.json")],
            capture_output=True, text=True, cwd=REPO,
        )
        assert result.returncode == 2

    def test_committed_baselines_are_valid(self, baselines):
        assert baselines, "baselines.json has no metrics"
        assert all(
            isinstance(v, (int, float)) and v > 0 for v in baselines.values()
        )
