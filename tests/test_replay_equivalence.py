"""Batched (columnar/set-partitioned) replay vs sequential: equivalence.

The batched replay path (``TraceTimingModel.run(engine="batched")`` +
``repro.simulator.cache_fast``) must be *observationally identical* to the
per-event reference: bit-identical :class:`TimingResult` fields, identical
:class:`CacheStats` at both levels, identical DRAM counters, identical
per-op miss attribution, and bit-identical cache state afterwards (tags,
dirty bits, LRU ticks) — so the two engines can be freely interleaved on
one model.  Parametrized over kernels (incl. Winograd's indexed gathers),
VLEN, LMUL-built traces and both ``vector_at_l2`` hierarchy modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.direct import DirectConv
from repro.algorithms.im2col_gemm import Im2colGemm3
from repro.algorithms.winograd import WinogradConv
from repro.errors import SimulationError
from repro.isa.machine import VectorMachine
from repro.isa.trace import InstructionTrace, MemoryOp
from repro.nn.layer import ConvSpec
from repro.simulator._compiled import HAVE_NUMBA
from repro.simulator.cache import CacheHierarchy, SetAssociativeCache
from repro.simulator.cache_fast import replay_line_stream, simulate_cache_stream
from repro.simulator.hwconfig import HardwareConfig
from repro.simulator.replay_backend import available_backends, resolve_backend
from repro.simulator.timing import TraceTimingModel, configure_replay, replay_defaults

SPEC = ConvSpec(ic=5, oc=7, ih=13, iw=11, kh=3, kw=3, stride=1, pad=1)

_needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="Numba not installed")

#: (backend, workers) combinations every equivalence claim is checked under.
REPLAY_MODES = [
    pytest.param("numpy", 1, id="numpy"),
    pytest.param("numpy", 3, id="numpy-sharded"),
    pytest.param("compiled", 1, id="compiled", marks=_needs_numba),
    pytest.param("compiled", 3, id="compiled-sharded", marks=_needs_numba),
]

CONFIGS = [
    HardwareConfig.paper2_rvv(512, 1.0),
    HardwareConfig.paper1_riscvv(512, 1.0),
    HardwareConfig.paper2_rvv(512, 1.0).with_(software_prefetch=True),
    HardwareConfig.a64fx(),
]

ALGORITHMS = [
    ("direct", DirectConv()),
    ("winograd", WinogradConv()),
    ("im2col_gemm3", Im2colGemm3()),
]


def _kernel_trace(alg, vlen: int, seed: int = 0) -> InstructionTrace:
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((SPEC.ic, SPEC.ih, SPEC.iw)).astype(np.float32)
    w = (
        0.3 * rng.standard_normal((SPEC.oc, SPEC.ic, SPEC.kh, SPEC.kw))
    ).astype(np.float32)
    machine = VectorMachine(vlen)
    alg.run_vectorized(SPEC, x, w, machine)
    return machine.trace


def _lmul_trace(vlen: int, lmul: int) -> InstructionTrace:
    """A synthetic strip-mined trace exercising LMUL register grouping."""
    rng = np.random.default_rng(3)
    machine = VectorMachine(vlen)
    src = machine.alloc_from("src", rng.standard_normal(4096).astype(np.float32))
    dst = machine.alloc("dst", 4096)
    machine.vcopy_strips(src, 0, dst, 7, 1800, lmul=lmul)
    machine.vcopy_strips(src, 11, dst, 100, 900, src_stride=3, lmul=lmul)
    machine.vsetvl(64, lmul=lmul)
    machine.vload(0, src, 5)
    machine.vfmacc_vf(0, 1.5, 0)
    machine.vstore(0, dst, 2000)
    return machine.trace


def _assert_hierarchy_equal(a: CacheHierarchy, b: CacheHierarchy) -> None:
    for ca, cb in ((a.l1, b.l1), (a.l2, b.l2)):
        assert np.array_equal(ca._tags, cb._tags)
        assert np.array_equal(ca._dirty, cb._dirty)
        assert np.array_equal(ca._lru, cb._lru)
        assert ca._tick == cb._tick
        assert ca.stats == cb.stats
    assert a.dram_lines == b.dram_lines
    assert a.dram_writeback_lines == b.dram_writeback_lines


def _assert_replay_equivalent(
    trace: InstructionTrace,
    cfg: HardwareConfig,
    backend: str = "auto",
    workers: int = 1,
):
    seq = TraceTimingModel(cfg)
    bat = TraceTimingModel(cfg)
    # two back-to-back runs without flush: the second starts from the warm
    # state the first left behind, in both engines
    for _ in range(2):
        r_seq = seq.run(trace, engine="sequential")
        r_bat = bat.run(
            trace, engine="batched", backend=backend, workers=workers
        )
        assert r_seq == r_bat  # dataclass ==: bit-exact float comparison
        _assert_hierarchy_equal(seq.hierarchy, bat.hierarchy)
    return r_seq


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("vlen", [128, 512])
@pytest.mark.parametrize("alg", ALGORITHMS, ids=lambda a: a[0])
def test_kernel_replay_batched_matches_sequential(alg, vlen, cfg):
    trace = _kernel_trace(alg[1], vlen)
    res = _assert_replay_equivalent(trace, cfg)
    assert res.cycles > 0 and res.memory_instrs > 0


@pytest.mark.parametrize("cfg", CONFIGS[:2], ids=lambda c: c.name)
@pytest.mark.parametrize("lmul", [1, 2, 4])
def test_lmul_trace_replay_matches(lmul, cfg):
    trace = _lmul_trace(512, lmul)
    _assert_replay_equivalent(trace, cfg)


@pytest.mark.parametrize("backend,workers", REPLAY_MODES)
@pytest.mark.parametrize("cfg", CONFIGS[:2], ids=lambda c: c.name)
def test_per_op_miss_attribution_matches(cfg, backend, workers):
    trace = _kernel_trace(WinogradConv(), 256)  # includes indexed gathers
    ops = [e for e in trace if isinstance(e, MemoryOp)]
    h_ref = CacheHierarchy.from_config(cfg)
    ref = [h_ref.access_memop(op) for op in ops]
    h_fast = CacheHierarchy.from_config(cfg)
    mem = trace.memory_columns()
    lines, op_ids = trace.memory_line_stream(h_fast.line_bytes, rows=mem.rows)
    l1_m, l2_m = replay_line_stream(
        h_fast, lines, mem.is_store[op_ids], op_ids, len(ops),
        backend=backend, workers=workers,
    )
    assert [(int(a), int(b)) for a, b in zip(l1_m, l2_m)] == ref
    _assert_hierarchy_equal(h_ref, h_fast)


@pytest.mark.parametrize("backend,workers", REPLAY_MODES)
def test_backend_modes_match_sequential(backend, workers):
    """Every backend × sharding mode is bit-identical to sequential."""
    cfg = HardwareConfig.paper2_rvv(512, 1.0)
    for trace in (_kernel_trace(WinogradConv(), 256), _lmul_trace(512, 2)):
        res = _assert_replay_equivalent(
            trace, cfg, backend=backend, workers=workers
        )
        assert res.cycles > 0


@pytest.mark.parametrize("backend,workers", REPLAY_MODES)
def test_victim_stream_parity_across_modes(backend, workers):
    """hits/writebacks/victims arrays match the per-access walk exactly."""
    rng = np.random.default_rng(11)
    cache_ref = SetAssociativeCache("C", 8 * 2 * 64, 2, 64)
    cache_fast = SetAssociativeCache("C", 8 * 2 * 64, 2, 64)
    lines = rng.integers(0, 64, size=600).astype(np.int64) * 64
    stores = rng.random(600) < 0.4
    expected = [
        cache_ref.access(int(a), bool(s)) for a, s in zip(lines, stores)
    ]
    hits, wbs, victims = simulate_cache_stream(
        cache_fast, lines, stores, backend=backend, workers=workers
    )
    for (ref_hit, ref_victim), hit, wb, victim in zip(
        expected, hits, wbs, victims
    ):
        assert ref_hit == bool(hit)
        assert (ref_victim is not None) == bool(wb)
        if ref_victim is not None:
            assert ref_victim == int(victim)
    assert np.array_equal(cache_ref._tags, cache_fast._tags)
    assert np.array_equal(cache_ref._lru, cache_fast._lru)
    assert cache_ref.stats == cache_fast.stats


def test_engines_can_interleave_on_one_model():
    """Sequential then batched on the same model: state stays consistent."""
    cfg = HardwareConfig.paper2_rvv(512, 1.0)
    trace = _kernel_trace(DirectConv(), 512)
    mixed = TraceTimingModel(cfg)
    r1 = mixed.run(trace, engine="sequential")
    r2 = mixed.run(trace, engine="batched")
    ref = TraceTimingModel(cfg)
    assert r1 == ref.run(trace, engine="sequential")
    assert r2 == ref.run(trace, engine="sequential")
    _assert_hierarchy_equal(mixed.hierarchy, ref.hierarchy)


def test_flush_starts_cold_in_both_engines():
    cfg = HardwareConfig.paper2_rvv(512, 1.0)
    trace = _kernel_trace(DirectConv(), 512)
    seq = TraceTimingModel(cfg)
    bat = TraceTimingModel(cfg)
    seq.run(trace)
    bat.run(trace)
    assert seq.run(trace, flush=True, engine="sequential") == bat.run(
        trace, flush=True, engine="batched"
    )
    _assert_hierarchy_equal(seq.hierarchy, bat.hierarchy)


# --------------------------------------------------------------------- #
# trace column/stream plumbing
# --------------------------------------------------------------------- #
def test_memory_line_stream_matches_per_op_expansion():
    trace = _kernel_trace(WinogradConv(), 256)
    line_bytes = 64
    lines, op_ids = trace.memory_line_stream(line_bytes)
    ops = [e for e in trace if isinstance(e, MemoryOp)]
    expected = [op.line_addresses(line_bytes) for op in ops]
    assert np.array_equal(lines, np.concatenate(expected))
    expected_ids = np.repeat(np.arange(len(ops)), [e.size for e in expected])
    assert np.array_equal(op_ids, expected_ids)


def test_columns_are_read_only_views():
    trace = _kernel_trace(DirectConv(), 128)
    cols = trace.columns()
    assert len(cols.kind) == len(trace)
    with pytest.raises(ValueError):
        cols.vl[0] = 99


def test_batched_engine_rejects_foreign_events():
    cfg = HardwareConfig.paper2_rvv(512, 1.0)
    trace = InstructionTrace()
    trace.events.append("bogus")
    with pytest.raises(SimulationError, match="foreign"):
        TraceTimingModel(cfg).run(trace, engine="batched")
    # auto falls back to sequential, which rejects the unknown payload
    with pytest.raises(TypeError):
        TraceTimingModel(cfg).run(trace)


def test_unknown_engine_rejected():
    cfg = HardwareConfig.paper2_rvv(512, 1.0)
    with pytest.raises(SimulationError, match="unknown replay engine"):
        TraceTimingModel(cfg).run(InstructionTrace(), engine="warp")


def test_trace_report_uses_batched_replay():
    from repro.experiments.trace_report import report

    spec = ConvSpec(ic=4, oc=6, ih=10, iw=10, kh=3, kw=3, stride=1, pad=1, index=1)
    result = report(spec, HardwareConfig.paper2_rvv(512, 1.0))
    assert set(result.data["trace_cycles"]) == set(result.data["analytical_cycles"])
    for name, cycles in result.data["trace_cycles"].items():
        assert cycles > 0
        assert result.data["events"][name] > 0


# --------------------------------------------------------------------- #
# backend registry and process-wide replay defaults
# --------------------------------------------------------------------- #
def test_backend_registry_resolution():
    assert "numpy" in available_backends()
    assert resolve_backend("numpy").name == "numpy"
    expected_auto = "compiled" if HAVE_NUMBA else "numpy"
    assert resolve_backend("auto").name == expected_auto
    assert resolve_backend(None).name == expected_auto
    with pytest.raises(SimulationError, match="unknown replay backend"):
        resolve_backend("warp")


@pytest.mark.skipif(HAVE_NUMBA, reason="Numba is installed")
def test_compiled_backend_unavailable_names_the_extra():
    assert available_backends() == ("numpy",)
    with pytest.raises(SimulationError, match=r"\[compiled\] extra"):
        resolve_backend("compiled")


@_needs_numba
def test_compiled_backend_registered():
    assert "compiled" in available_backends()
    assert resolve_backend("compiled").name == "compiled"


@pytest.fixture
def _restore_replay_defaults():
    yield
    configure_replay(backend="auto", workers=1)


def test_configure_replay_sets_process_defaults(_restore_replay_defaults):
    assert replay_defaults() == ("auto", 1)
    assert configure_replay(backend="numpy", workers=2) == ("numpy", 2)
    assert replay_defaults() == ("numpy", 2)
    # None leaves a value unchanged
    assert configure_replay(workers=1) == ("numpy", 1)
    with pytest.raises(SimulationError, match="unknown replay backend"):
        configure_replay(backend="warp")
    with pytest.raises(SimulationError, match="workers must be >= 1"):
        configure_replay(workers=0)
    if not HAVE_NUMBA:  # eager validation: fails at config time
        with pytest.raises(SimulationError, match=r"\[compiled\] extra"):
            configure_replay(backend="compiled")


def test_run_uses_configured_defaults(_restore_replay_defaults):
    cfg = HardwareConfig.paper2_rvv(512, 1.0)
    trace = _kernel_trace(DirectConv(), 512)
    ref = TraceTimingModel(cfg).run(trace, engine="batched")
    configure_replay(backend="numpy", workers=2)
    assert TraceTimingModel(cfg).run(trace, engine="batched") == ref


def test_run_rejects_bad_backend_and_workers():
    cfg = HardwareConfig.paper2_rvv(512, 1.0)
    model = TraceTimingModel(cfg)
    with pytest.raises(SimulationError, match="unknown replay backend"):
        model.run(InstructionTrace(), engine="batched", backend="warp")
    with pytest.raises(SimulationError, match="workers must be >= 1"):
        model.run(InstructionTrace(), engine="batched", workers=0)


# --------------------------------------------------------------------- #
# misaligned-access diagnostics
# --------------------------------------------------------------------- #
def test_misaligned_stream_error_reports_count_and_addresses():
    cache = SetAssociativeCache("L1", 4 * 2 * 64, 2, 64)
    lines = np.array([0, 65, 128, 3, 130, 7, 9, 192], dtype=np.int64)
    stores = np.zeros(lines.size, dtype=bool)
    with pytest.raises(SimulationError, match="not line-aligned") as excinfo:
        simulate_cache_stream(cache, lines, stores)
    msg = str(excinfo.value)
    assert "L1: 5 of 8 accesses" in msg
    # the first few offenders, in stream order, as hex addresses
    assert "0x41, 0x3, 0x82, 0x7" in msg
    assert msg.endswith("...)")  # more offenders than shown
    assert "0x9" not in msg  # truncated after the first four
    # the stream was rejected before any state mutation
    assert cache.stats.accesses == 0 and cache._tick == 0


def test_misaligned_error_without_truncation():
    cache = SetAssociativeCache("L1", 4 * 2 * 64, 2, 64)
    lines = np.array([64, 66], dtype=np.int64)
    with pytest.raises(SimulationError, match="1 of 2 accesses") as excinfo:
        simulate_cache_stream(cache, lines, np.zeros(2, dtype=bool))
    assert "..." not in str(excinfo.value)


# --------------------------------------------------------------------- #
# trace spill: replaying a reloaded trace is bit-identical
# --------------------------------------------------------------------- #
def test_spilled_trace_replays_identically(tmp_path):
    trace = _kernel_trace(WinogradConv(), 256)  # indexed gathers included
    path = trace.save(tmp_path / "trace")
    loaded = InstructionTrace.load(path)
    assert not loaded._kind.flags.writeable  # zero-copy memmap columns
    cfg = HardwareConfig.paper2_rvv(512, 1.0)
    ref = TraceTimingModel(cfg).run(trace, engine="batched")
    assert TraceTimingModel(cfg).run(loaded, engine="batched") == ref
    assert TraceTimingModel(cfg).run(loaded, engine="sequential") == ref
    assert TraceTimingModel(cfg).run(
        loaded, engine="batched", backend="numpy", workers=3
    ) == ref


def test_spilled_trace_copies_on_first_append(tmp_path):
    trace = _lmul_trace(512, 2)
    loaded = InstructionTrace.load(trace.save(tmp_path / "t"))
    before = len(loaded)
    loaded.emit_scalar("nop")  # must not blow up on read-only columns
    assert len(loaded) == before + 1
    assert loaded._kind.flags.writeable
    assert list(loaded.events)[:before] == list(trace.events)


def test_spill_refuses_foreign_events(tmp_path):
    trace = InstructionTrace()
    trace.events.append(object())
    with pytest.raises(SimulationError, match="foreign"):
        trace.save(tmp_path / "t")


def test_load_rejects_non_container(tmp_path):
    junk = tmp_path / "junk.npz"
    junk.write_bytes(b"this is not a zip file")
    with pytest.raises(SimulationError, match="not a readable"):
        InstructionTrace.load(junk)
    incomplete = tmp_path / "incomplete.npz"
    import zipfile

    with zipfile.ZipFile(incomplete, "w") as zf:
        zf.writestr("meta.json", "{}")
    with pytest.raises(SimulationError, match="missing members"):
        InstructionTrace.load(incomplete)
