"""Tests for the set-associative LRU cache and hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SimulationError
from repro.isa.trace import MemoryOp
from repro.simulator.cache import CacheHierarchy, SetAssociativeCache
from repro.simulator.hwconfig import HardwareConfig


def make_cache(size=1024, assoc=2, line=64, name="L1"):
    return SetAssociativeCache(name, size, assoc, line)


class TestCacheGeometry:
    def test_sets_computed(self):
        c = make_cache(1024, 2, 64)
        assert c.num_sets == 8

    def test_size_not_divisible(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache("c", 1000, 2, 64)

    def test_non_power_of_two_sets(self):
        with pytest.raises(ConfigError, match="power of two"):
            SetAssociativeCache("c", 3 * 64 * 2, 2, 64)

    def test_unaligned_access_rejected(self):
        c = make_cache()
        with pytest.raises(SimulationError, match="not line-aligned"):
            c.access(7, False)


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        c = make_cache()
        hit, _ = c.access(0, False)
        assert not hit
        hit, _ = c.access(0, False)
        assert hit
        assert c.stats.accesses == 2 and c.stats.hits == 1 and c.stats.misses == 1

    def test_same_line_different_bytes(self):
        c = make_cache()
        c.access(0, False)
        assert c.lookup(0)

    def test_lru_eviction_order(self):
        c = make_cache(size=2 * 64, assoc=2, line=64)  # 1 set, 2 ways
        a, b, d = 0, 64, 128  # all map to set 0
        c.access(a, False)
        c.access(b, False)
        c.access(a, False)  # a is now MRU
        c.access(d, False)  # evicts b (LRU)
        assert c.lookup(a) and c.lookup(d) and not c.lookup(b)

    def test_dirty_writeback_on_eviction(self):
        c = make_cache(size=2 * 64, assoc=2, line=64)
        c.access(0, True)  # dirty
        c.access(64, False)
        _, victim = c.access(128, False)  # evicts line 0 (dirty)
        assert victim == 0
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = make_cache(size=2 * 64, assoc=2, line=64)
        c.access(0, False)
        c.access(64, False)
        _, victim = c.access(128, False)
        assert victim is None

    def test_capacity_bound(self):
        c = make_cache(size=1024, assoc=2, line=64)
        for i in range(100):
            c.access(i * 64, False)
        assert c.resident_lines() <= 1024 // 64

    def test_flush(self):
        c = make_cache()
        c.access(0, True)
        c.flush()
        assert not c.lookup(0)
        assert c.resident_lines() == 0

    def test_full_working_set_hits_after_warmup(self):
        c = make_cache(size=1024, assoc=4, line=64)
        lines = [i * 64 for i in range(16)]  # exactly capacity
        for l in lines:
            c.access(l, False)
        c.stats.reset()
        for l in lines:
            assert c.access(l, False)[0]
        assert c.stats.hit_rate == 1.0

    def test_thrash_working_set_misses(self):
        """Cyclic sweep of 2x capacity with LRU never hits."""
        c = make_cache(size=1024, assoc=16, line=64)  # fully assoc, 16 lines
        lines = [i * 64 for i in range(32)]
        for _ in range(3):
            for l in lines:
                c.access(l, False)
        c.stats.reset()
        for l in lines:
            assert not c.access(l, False)[0]

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_hit_after_immediate_reaccess(self, line_ids):
        """Invariant: re-accessing the line just touched always hits."""
        c = make_cache(size=2048, assoc=4, line=64)
        for lid in line_ids:
            c.access(lid * 64, False)
            assert c.access(lid * 64, False)[0]

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_stats_consistency(self, line_ids):
        c = make_cache(size=1024, assoc=2, line=64)
        for lid in line_ids:
            c.access(lid * 64, lid % 3 == 0)
        s = c.stats
        assert s.hits + s.misses == s.accesses == len(line_ids)
        assert 0.0 <= s.miss_rate <= 1.0
        assert c.resident_lines() <= 16


class TestHierarchy:
    def test_l1_miss_goes_to_l2(self):
        h = CacheHierarchy(make_cache(512, 2, 64, "L1"), make_cache(4096, 4, 64, "L2"))
        res = h.access_line(0, False)
        assert res["l1_hit"] is False and res["l2_hit"] is False
        assert h.dram_lines == 1
        res = h.access_line(0, False)
        assert res["l1_hit"] is True

    def test_l2_catches_l1_evictions(self):
        h = CacheHierarchy(make_cache(128, 2, 64, "L1"), make_cache(4096, 4, 64, "L2"))
        # sweep more than L1 (2 lines) but less than L2
        for addr in range(0, 64 * 8, 64):
            h.access_line(addr, False)
        before = h.dram_lines
        for addr in range(0, 64 * 8, 64):
            res = h.access_line(addr, False)
            assert res["l1_hit"] or res["l2_hit"]
        assert h.dram_lines == before

    def test_decoupled_vector_bypasses_l1(self):
        h = CacheHierarchy(
            make_cache(512, 2, 64, "L1"), make_cache(4096, 4, 64, "L2"),
            vector_at_l2=True,
        )
        res = h.access_line(0, False, vector=True)
        assert res["l1_hit"] is None and res["l2_hit"] is False
        assert h.l1.stats.accesses == 0

    def test_decoupled_scalar_still_uses_l1(self):
        h = CacheHierarchy(
            make_cache(512, 2, 64, "L1"), make_cache(4096, 4, 64, "L2"),
            vector_at_l2=True,
        )
        res = h.access_line(0, False, vector=False)
        assert res["l1_hit"] is False

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ConfigError):
            CacheHierarchy(
                SetAssociativeCache("L1", 512, 2, 32),
                SetAssociativeCache("L2", 4096, 4, 64),
            )

    def test_access_memop_counts_misses(self):
        h = CacheHierarchy(make_cache(512, 2, 64, "L1"), make_cache(4096, 4, 64, "L2"))
        op = MemoryOp("vle", 0, 4, 32, 4, is_store=False)  # 2 lines
        l1m, l2m = h.access_memop(op)
        assert l1m == 2 and l2m == 2
        l1m, l2m = h.access_memop(op)
        assert l1m == 0 and l2m == 0

    def test_from_config_styles(self):
        integrated = CacheHierarchy.from_config(HardwareConfig.paper2_rvv(512, 1.0))
        assert not integrated.vector_at_l2
        decoupled = CacheHierarchy.from_config(HardwareConfig.paper1_riscvv(512, 1.0))
        assert decoupled.vector_at_l2

    def test_dirty_l1_victim_lands_in_l2(self):
        h = CacheHierarchy(make_cache(128, 2, 64, "L1"), make_cache(4096, 4, 64, "L2"))
        h.access_line(0, True)  # dirty in L1 (and allocated in L2)
        h.access_line(64 * 16, False)
        h.access_line(64 * 32, False)  # evicts line 0 from L1 -> L2 update
        assert h.l2.lookup(0)
