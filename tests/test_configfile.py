"""Tests for INI-based hardware configuration loading."""

import pytest

from repro.errors import ConfigError
from repro.simulator.configfile import (
    builtin_config_dir,
    load_hardware_config,
    parse_hardware_ini,
)
from repro.simulator.hwconfig import HardwareConfig, VectorUnitStyle

GOOD = """
[hardware]
name = test-design
vlen_bits = 2048
style = decoupled
vector_lanes = 4
l2_mib = 4.0
software_prefetch = yes
isa = sve
"""


class TestParse:
    def test_fields_applied(self):
        hw = parse_hardware_ini(GOOD)
        assert hw.name == "test-design"
        assert hw.vlen_bits == 2048
        assert hw.style is VectorUnitStyle.DECOUPLED
        assert hw.vector_lanes == 4
        assert hw.l2_mib == 4.0
        assert hw.software_prefetch is True
        assert hw.isa == "sve"

    def test_defaults_fill_missing(self):
        hw = parse_hardware_ini("[hardware]\nvlen_bits = 1024\n")
        assert hw.l1_kib == HardwareConfig().l1_kib

    def test_comments_ignored(self):
        hw = parse_hardware_ini("[hardware]\nvlen_bits = 512 ; inline\n")
        assert hw.vlen_bits == 512

    @pytest.mark.parametrize(
        "text,msg",
        [
            ("vlen_bits = 512", "malformed|section"),
            ("[cpu]\nvlen_bits = 512", "section"),
            ("[hardware]\nwidth = 4", "unknown hardware option"),
            ("[hardware]\nvlen_bits = wide", "integer"),
            ("[hardware]\nl2_mib = big", "number"),
            ("[hardware]\nsoftware_prefetch = maybe", "boolean"),
            ("[hardware]\nstyle = sideways", "integrated"),
            ("[hardware]\nvlen_bits = 300", "power of two"),
        ],
    )
    def test_rejections(self, text, msg):
        import re

        with pytest.raises(Exception) as err:
            parse_hardware_ini(text)
        assert re.search(msg, str(err.value))


class TestFiles:
    def test_builtin_configs_all_load(self):
        config_dir = builtin_config_dir()
        files = sorted(config_dir.glob("*.ini"))
        assert len(files) >= 4
        for path in files:
            hw = load_hardware_config(path)
            assert hw.name == path.stem

    def test_a64fx_file_matches_preset(self):
        from_file = load_hardware_config(builtin_config_dir() / "a64fx.ini")
        preset = HardwareConfig.a64fx()
        assert from_file == preset

    def test_missing_file(self):
        with pytest.raises(ConfigError, match="does not exist"):
            load_hardware_config("/nonexistent.ini")

    def test_loaded_config_drives_the_model(self):
        from repro.algorithms.registry import layer_cycles
        from repro.nn.layer import ConvSpec

        hw = load_hardware_config(
            builtin_config_dir() / "paper2-rvv-2048b-1mb.ini"
        )
        spec = ConvSpec(ic=16, oc=16, ih=16, iw=16, index=1)
        assert layer_cycles("direct", spec, hw).cycles > 0
