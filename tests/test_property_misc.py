"""Property-based tests for the supporting infrastructure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.campaign import FIELDS, Campaign
from repro.simulator.energy import layer_energy
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.ascii_chart import sparkline
from repro.utils.tables import Table


record_strategy = st.fixed_dictionaries(
    {
        "workload": st.sampled_from(["a", "b"]),
        "layer": st.integers(1, 20),
        "algorithm": st.sampled_from(["direct", "winograd"]),
        "vlen_bits": st.sampled_from([512, 2048]),
        "l2_mib": st.sampled_from([1.0, 16.0]),
        "cycles": st.floats(1.0, 1e9, allow_nan=False),
        "dram_bytes": st.floats(0.0, 1e9, allow_nan=False),
        "bound": st.sampled_from(["vector", "dram"]),
        "applicable": st.booleans(),
    }
)


class TestCampaignProperties:
    @given(records=st.lists(record_strategy, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_json_roundtrip_any_records(self, records, tmp_path_factory):
        c = Campaign(name="fuzz", records=records)
        path = tmp_path_factory.mktemp("c") / "c.json"
        c.save(path)
        loaded = Campaign.load(path)
        assert loaded.records == records

    @given(records=st.lists(record_strategy, min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_filter_is_subset_and_exact(self, records):
        c = Campaign(name="fuzz", records=records)
        target = records[0]["algorithm"]
        hits = c.filter(algorithm=target)
        assert all(r["algorithm"] == target for r in hits)
        assert len(hits) == sum(1 for r in records if r["algorithm"] == target)

    @given(records=st.lists(record_strategy, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_csv_row_count(self, records):
        c = Campaign(name="fuzz", records=records)
        lines = c.to_csv().strip().splitlines()
        assert len(lines) == 1 + len(records)
        assert lines[0] == ",".join(FIELDS)


class TestTableProperties:
    @given(
        rows=st.lists(
            st.tuples(st.integers(-1000, 1000), st.floats(0.001, 1e6)),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=30)
    def test_render_row_count_and_alignment(self, rows):
        t = Table(["a", "value"])
        for r in rows:
            t.add_row(list(r))
        rendered = t.render().splitlines()
        assert len(rendered) == 2 + len(rows)  # header + separator + rows
        # all rows share the header's width
        assert len({len(line) for line in rendered}) <= 2


class TestSparklineProperties:
    @given(values=st.lists(st.floats(-1e6, 1e6, allow_nan=False),
                           min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_output_length_and_charset(self, values):
        line = sparkline(values)
        assert len(line) == len(values)
        assert set(line) <= set("▁▂▃▄▅▆▇█")

    @given(values=st.lists(st.floats(0, 100, allow_nan=False),
                           min_size=2, max_size=30))
    @settings(max_examples=30)
    def test_extremes_map_to_extremes(self, values):
        if min(values) == max(values):
            return
        line = sparkline(values)
        assert line[int(np.argmax(values))] == "█"
        assert line[int(np.argmin(values))] == "▁"


class TestEnergyProperties:
    @given(vl=st.sampled_from([512, 1024, 2048, 4096]),
           l2=st.sampled_from([1.0, 4.0, 16.0]))
    @settings(max_examples=15, deadline=None)
    def test_energy_positive_and_finite(self, vl, l2):
        from repro.nn.layer import ConvSpec

        spec = ConvSpec(ic=16, oc=16, ih=20, iw=20, index=1)
        e = layer_energy("im2col_gemm3", spec, HardwareConfig.paper2_rvv(vl, l2))
        assert np.isfinite(e.total_j) and e.total_j > 0
