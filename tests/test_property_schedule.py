"""Property tests for the schedule IR and the kernel-template identity.

Two invariant families:

* **IR legality** — for *any* generated transform sequence over a random
  nest, ``apply_transforms`` either raises ``ScheduleError`` or returns a
  :class:`ScheduledNest` whose structural invariants all hold (unique
  axes, positive extents, coverage-preserving tiles, innermost vector
  axis, bounded unroll).  No sequence may crash with anything else or
  produce a malformed nest.

* **schedule identity** — a default-parameter variant name must execute
  the *same* kernel as the bare menu entry: bit-identical counts-mode
  :class:`TraceStats` (and analytical phases) on every layer shape.  This
  is what makes the search's match-or-beat guarantee meaningful — the IR
  round-trip does not perturb the kernels it re-expresses.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.nn.layer import ConvSpec
from repro.schedule.ir import (
    VECTOR_REGS,
    LoopNest,
    Reorder,
    ScheduledNest,
    Tile,
    Unroll,
    Vectorize,
    apply_transforms,
    base_axis_of,
)
from repro.schedule.oracle import counts_equal, counts_stats
from repro.schedule.templates import get_template
from repro.simulator.hwconfig import HardwareConfig

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

_AXES = ("a", "b", "c", "d")

#: Axis names a transform may reference: base axes and plausible split
#: names — including names that may not exist, so the unknown-axis and
#: already-tiled legality branches get exercised too.
_axis_names = st.sampled_from(
    _AXES + tuple(f"{a}.o" for a in _AXES) + tuple(f"{a}.i" for a in _AXES)
)


@st.composite
def nests(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    extents = tuple(
        draw(st.integers(min_value=1, max_value=64)) for _ in range(n)
    )
    return LoopNest(name="p", axes=_AXES[:n], extents=extents)


@st.composite
def transforms(draw):
    kind = draw(st.sampled_from(("tile", "reorder", "unroll", "vectorize")))
    if kind == "tile":
        return Tile(draw(_axis_names), draw(st.integers(min_value=0, max_value=80)))
    if kind == "reorder":
        order = tuple(
            draw(
                st.lists(
                    _axis_names, min_size=1, max_size=6, unique=True
                )
            )
        )
        return Reorder(order)
    if kind == "unroll":
        return Unroll(draw(_axis_names))
    return Vectorize(draw(_axis_names))


def assert_invariants(nest: LoopNest, sched: ScheduledNest) -> None:
    # unique axes, one extent each, all positive
    assert len(set(sched.axes)) == len(sched.axes)
    assert len(sched.axes) == len(sched.extents)
    assert all(e >= 1 for e in sched.extents)
    # every axis derives from a base axis; split axes cover their extent
    for axis in sched.axes:
        assert base_axis_of(axis) in nest.axes
    for base in nest.axes:
        covered = 1
        for axis, extent in zip(sched.axes, sched.extents):
            if base_axis_of(axis) == base:
                covered *= extent
        assert covered >= nest.extent(base)  # tiles never drop iterations
    # unrolled axes exist; the budget held at every step
    assert all(axis in sched.axes for axis in sched.unrolled)
    assert sched.total_unroll() <= VECTOR_REGS - 4
    # at most one vector axis, and it is innermost
    if sched.vector_axis is not None:
        assert sched.axes[-1] == sched.vector_axis


class TestIRProperties:
    @settings(max_examples=200, deadline=None)
    @given(nest=nests(), seq=st.lists(transforms(), max_size=6))
    def test_apply_transforms_is_total(self, nest, seq):
        """Any sequence either raises ScheduleError or yields a legal nest."""
        try:
            sched = apply_transforms(nest, seq)
        except ScheduleError:
            return
        assert_invariants(nest, sched)
        assert sched.transforms == tuple(seq)

    @settings(max_examples=100, deadline=None)
    @given(
        extent=st.integers(min_value=1, max_value=512),
        factor=st.integers(min_value=1, max_value=512),
    )
    def test_tile_coverage(self, extent, factor):
        """A tile's outer x inner iterations always cover the extent."""
        nest = LoopNest(name="p", axes=("a",), extents=(extent,))
        sched = apply_transforms(nest, [Tile("a", factor)])
        outer, inner = sched.extents
        assert outer * inner >= extent
        assert inner == min(factor, extent)
        assert (outer - 1) * inner < extent  # no empty outer iteration

    @settings(max_examples=100, deadline=None)
    @given(nest=nests(), seq=st.lists(transforms(), max_size=6))
    def test_legal_prefix_stays_legal(self, nest, seq):
        """If the whole sequence is legal, so is every prefix."""
        try:
            apply_transforms(nest, seq)
        except ScheduleError:
            return
        for cut in range(len(seq)):
            prefix = apply_transforms(nest, seq[:cut])
            assert_invariants(nest, prefix)


# ---------------------------------------------------------------------- #
# identity: default-parameter variants == menu kernels, bit for bit
# ---------------------------------------------------------------------- #

#: Small-but-representative layer: big enough to exercise strip-mining
#: and ragged tails, small enough for counts-mode execution in a test.
_SPEC = ConvSpec(ic=8, oc=16, ih=12, iw=12, kh=3, kw=3, index=1)
_HW = HardwareConfig.paper2_rvv(512, 1.0)

#: (menu name, default-parameter variant name) — the variant spells the
#: template's defaults explicitly, so the pair must be the same kernel.
_IDENTITY_PAIRS = [
    ("direct", "direct@uw=24"),
    ("im2col_gemm3", "im2col_gemm3@u=16"),
    ("im2col_gemm6", "im2col_gemm6@bm=16,bn=512,bk=128"),
]


class TestScheduleIdentity:
    @pytest.mark.parametrize("menu,variant", _IDENTITY_PAIRS)
    def test_counts_mode_bit_identical(self, menu, variant):
        assert counts_equal(menu, variant, _SPEC, 512)

    @pytest.mark.parametrize("menu,variant", _IDENTITY_PAIRS)
    def test_analytical_phases_identical(self, menu, variant):
        from repro.algorithms.registry import get_algorithm

        assert get_algorithm(menu).schedule(_SPEC, _HW) == get_algorithm(
            variant
        ).schedule(_SPEC, _HW)

    def test_counts_are_nonempty(self):
        stats = counts_stats("direct", _SPEC, 512)
        assert stats.vector_instrs > 0
        assert stats.memory_bytes > 0

    def test_non_default_variant_changes_counts(self):
        # sanity: the knob actually reaches the kernel — a different
        # unroll produces a different instruction stream
        base = counts_stats("im2col_gemm3", _SPEC, 512)
        other = counts_stats("im2col_gemm3@u=4", _SPEC, 512)
        assert base != other

    @pytest.mark.parametrize("menu,variant", _IDENTITY_PAIRS)
    def test_default_params_are_the_template_defaults(self, menu, variant):
        template = get_template(menu)
        defaults = template.default_params(_SPEC, _HW)
        from repro.schedule.variants import variant_name

        assert variant_name(menu, defaults) == variant
