"""Tests for GEMV timing and the inference-time profile."""

import numpy as np
import pytest

from repro.algorithms.gemv import gemv_phase, gemv_vectorized
from repro.experiments.cli import run_experiment
from repro.isa import VectorMachine
from repro.nn.layer import ConnectedSpec
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig


class TestGemv:
    def test_vectorized_correctness(self, rng):
        w = rng.standard_normal((7, 50)).astype(np.float32)
        x = rng.standard_normal(50).astype(np.float32)
        m = VectorMachine(512, trace=False)
        out = gemv_vectorized(m, w, x)
        np.testing.assert_allclose(out, w @ x, atol=1e-3)

    def test_phase_is_memory_bound(self):
        """Batch-1 FC: every weight byte read once -> DRAM-bound."""
        spec = ConnectedSpec(inputs=25088, outputs=4096)
        hw = HardwareConfig.paper2_rvv(512, 8.0)
        pc = AnalyticalTimingModel(hw).phase_cycles(gemv_phase(spec, hw))
        assert pc.bound == "dram"
        assert pc.dram_bytes >= spec.inputs * spec.outputs * 4

    def test_longer_vectors_dont_fix_gemv(self):
        """GEMV stays memory-bound: VL buys little."""
        spec = ConnectedSpec(inputs=4096, outputs=4096)
        def cycles(vl):
            hw = HardwareConfig.paper2_rvv(vl, 8.0)
            return AnalyticalTimingModel(hw).phase_cycles(
                gemv_phase(spec, hw)
            ).cycles
        assert cycles(512) / cycles(4096) < 1.5


class TestProfile:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("profile-breakdown")

    def test_yolo_conv_dominates(self, result):
        """Paper: ~96% of YOLOv3 inference is convolutional."""
        shares = result.data["shares"]["yolov3 (107 layers)"]
        assert shares["conv"] >= 0.90
        assert shares["connected"] == 0.0

    def test_vgg_fc_is_visible(self, result):
        """VGG-16's three FC layers take a non-trivial share (paper: the
        conv share is only ~64%; ours lands higher — see EXPERIMENTS.md)."""
        shares = result.data["shares"]["vgg16 (22 layers)"]
        assert shares["connected"] >= 0.05
        assert shares["conv"] > shares["connected"]

    def test_shares_sum_to_one(self, result):
        for shares in result.data["shares"].values():
            assert sum(shares.values()) == pytest.approx(1.0)
