"""Tests for the trace-driven timing engine."""

import numpy as np
import pytest

from repro.isa import VectorMachine
from repro.isa.trace import InstructionTrace, MemoryOp, ScalarOp, VectorOp
from repro.simulator.hwconfig import HardwareConfig
from repro.simulator.timing import TraceTimingModel


def saxpy_trace(vlen_bits: int, n: int = 4096) -> InstructionTrace:
    """Build a SAXPY trace on a machine of the given vector length."""
    m = VectorMachine(vlen_bits)
    x = m.alloc_from("x", np.arange(n, dtype=np.float32))
    y = m.alloc_from("y", np.ones(n, dtype=np.float32))
    i = 0
    while i < n:
        gvl = m.vsetvl(n - i)
        m.vload(0, y, i)
        m.vload(1, x, i)
        m.vfmacc_vf(0, 2.0, 1)
        m.vstore(0, y, i)
        i += gvl
    return m.trace


class TestTraceTiming:
    def test_nonzero_cycles(self):
        model = TraceTimingModel(HardwareConfig.paper2_rvv(512, 1.0))
        res = model.run(saxpy_trace(512))
        assert res.cycles > 0
        assert res.vector_instrs > 0 and res.memory_instrs > 0

    def test_longer_vectors_fewer_cycles(self):
        """Integrated datapath scales with VL: SAXPY speeds up."""
        short = TraceTimingModel(HardwareConfig.paper2_rvv(512, 1.0)).run(
            saxpy_trace(512)
        )
        long = TraceTimingModel(HardwareConfig.paper2_rvv(4096, 1.0)).run(
            saxpy_trace(4096)
        )
        assert long.cycles < short.cycles

    def test_warm_cache_faster_than_cold(self):
        model = TraceTimingModel(HardwareConfig.paper2_rvv(512, 4.0))
        trace = saxpy_trace(512, n=2048)  # 8KB x2: fits L1/L2
        cold = model.run(trace, flush=True)
        warm = model.run(trace)
        assert warm.cycles < cold.cycles
        assert warm.l2_misses < cold.l2_misses

    def test_scalar_ops_cost_one_cycle_each(self):
        model = TraceTimingModel(HardwareConfig.paper2_rvv(512, 1.0))
        trace = InstructionTrace()
        trace.emit(ScalarOp("s", 100))
        res = model.run(trace)
        assert res.scalar_cycles == 100

    def test_strided_slower_than_unit(self):
        cfg = HardwareConfig.paper2_rvv(512, 1.0)
        unit = InstructionTrace()
        strided = InstructionTrace()
        for i in range(64):
            unit.emit(MemoryOp("vle", i * 64, 4, 16, 4, is_store=False))
            strided.emit(MemoryOp("vlse", i * 64, 4, 16, 4 * 64, is_store=False))
        u = TraceTimingModel(cfg).run(unit)
        s = TraceTimingModel(cfg).run(strided)
        assert s.cycles > u.cycles

    def test_prefetch_reduces_memory_cycles(self):
        base = HardwareConfig.paper2_rvv(512, 1.0)
        pf = base.with_(software_prefetch=True)
        trace = saxpy_trace(512, n=8192)
        cold = TraceTimingModel(base).run(trace, flush=True)
        fast = TraceTimingModel(pf).run(trace, flush=True)
        assert fast.memory_cycles < cold.memory_cycles

    def test_out_of_order_overlap(self):
        base = HardwareConfig.paper2_rvv(512, 1.0)
        ooo = base.with_(out_of_order=True)
        trace = saxpy_trace(512, n=2048)
        in_order = TraceTimingModel(base).run(trace, flush=True)
        out_order = TraceTimingModel(ooo).run(trace, flush=True)
        assert out_order.cycles < in_order.cycles

    def test_merge_accumulates(self):
        model = TraceTimingModel(HardwareConfig.paper2_rvv(512, 1.0))
        a = model.run(saxpy_trace(512, 512))
        b = model.run(saxpy_trace(512, 512))
        total = a.cycles + b.cycles
        a.merge(b)
        assert a.cycles == pytest.approx(total)

    def test_reset_cold_caches(self):
        model = TraceTimingModel(HardwareConfig.paper2_rvv(512, 1.0))
        trace = saxpy_trace(512, n=1024)
        first = model.run(trace)
        model.reset()
        again = model.run(trace)
        assert again.l2_misses == first.l2_misses

    def test_unknown_event_rejected(self):
        model = TraceTimingModel(HardwareConfig.paper2_rvv(512, 1.0))
        trace = InstructionTrace()
        trace.events.append("bogus")  # bypass emit() checking
        with pytest.raises(TypeError):
            model.run(trace)

    def test_reset_rebuilds_dram_model(self):
        """reset() must restore the config's DRAM model, not keep a stale one."""
        from repro.simulator.memory import DramModel

        cfg = HardwareConfig.paper2_rvv(512, 1.0)
        model = TraceTimingModel(cfg)
        model.dram = DramModel(bytes_per_cycle=0.5, latency_cycles=9999)
        model.reset()
        assert model.dram == DramModel.from_config(cfg)
        # and timing after reset matches a fresh model's
        trace = saxpy_trace(512, n=1024)
        assert model.run(trace) == TraceTimingModel(cfg).run(trace)

    def test_counts_mode_trace_rejected_by_both_engines(self):
        from repro.errors import SimulationError

        model = TraceTimingModel(HardwareConfig.paper2_rvv(512, 1.0))
        trace = InstructionTrace(mode="counts")
        trace.emit(ScalarOp("s", 1))
        for engine in ("auto", "batched", "sequential"):
            with pytest.raises(SimulationError, match="'counts' mode"):
                model.run(trace, engine=engine)


class TestKernelLevelTiming:
    """Trace timing on the real vectorized kernels (small shapes)."""

    def test_gemm3_faster_than_scalar_equivalent(self, small_spec, small_tensors):
        from repro.algorithms import get_algorithm

        x, w = small_tensors
        cfg = HardwareConfig.paper2_rvv(512, 1.0)
        m = VectorMachine(512, trace=True)
        get_algorithm("im2col_gemm3").run_vectorized(small_spec, x, w, m)
        res = TraceTimingModel(cfg).run(m.trace)
        # a scalar implementation costs >= 2 instructions per MAC
        assert res.cycles < 2 * small_spec.macs

    def test_vectorized_kernels_report_high_avg_vl(self, small_spec, small_tensors):
        from repro.algorithms import get_algorithm

        x, w = small_tensors
        m = VectorMachine(512, trace=False)
        get_algorithm("im2col_gemm3").run_vectorized(small_spec, x, w, m)
        # the paper's Table III: optimized kernels nearly saturate the VL
        assert m.trace.stats.average_vl() > 8
