"""Tests for the deterministic fault-injection plane (repro.faults)."""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.errors import FaultSpecError
from repro.faults import ENV_VAR, FaultPlan, active_plan, inject, parse_fault_spec
from repro.faults.plan import _hash_unit

pytestmark = pytest.mark.chaos  # fault-injection suite: full-suite CI job


class TestSpecGrammar:
    def test_parse_every_key(self):
        plan = parse_fault_spec(
            "seed=42,worker.crash=2,worker.hang=1,hang.seconds=5,"
            "cache.corrupt=0.1,cache.write_error=0.05,cell.error=0.2,"
            "serving.burst=3,serving.predictor_error=0.15,campaign.abort=10,"
            "replica.crash=0.01,replica.hang=0.02,replica.slow=0.03,"
            "probe.drop=0.04"
        )
        assert plan.seed == 42
        assert plan.worker_crash == 2 and plan.worker_hang == 1
        assert plan.hang_seconds == 5.0
        assert plan.cache_corrupt == 0.1 and plan.cache_write_error == 0.05
        assert plan.cell_error == 0.2
        assert plan.serving_burst == 3.0 and plan.predictor_error == 0.15
        assert plan.campaign_abort == 10
        assert plan.replica_crash == 0.01 and plan.replica_hang == 0.02
        assert plan.replica_slow == 0.03 and plan.probe_drop == 0.04

    def test_empty_spec_is_the_default_plan(self):
        assert parse_fault_spec("") == FaultPlan()

    def test_whitespace_tolerated(self):
        assert parse_fault_spec(" seed = 7 , worker.crash = 1 ") == FaultPlan(
            seed=7, worker_crash=1
        )

    def test_round_trip_exact(self):
        spec = ("seed=42,worker.crash=2,worker.hang=1,hang.seconds=5,"
                "cache.corrupt=0.1,campaign.abort=10")
        plan = parse_fault_spec(spec)
        assert parse_fault_spec(plan.to_spec()) == plan

    def test_round_trip_covers_the_replica_sites(self):
        spec = ("seed=4,replica.crash=0.0005,replica.hang=0.01,"
                "replica.slow=0.1,probe.drop=0.2")
        plan = parse_fault_spec(spec)
        assert parse_fault_spec(plan.to_spec()) == plan
        for key in ("replica.crash", "replica.hang", "replica.slow",
                    "probe.drop"):
            assert key in plan.to_spec()

    def test_default_plan_serializes_empty(self):
        assert FaultPlan().to_spec() == ""

    def test_unknown_site_error_lists_replica_sites(self):
        with pytest.raises(FaultSpecError) as excinfo:
            parse_fault_spec("replica.explode=1")
        message = str(excinfo.value)
        for key in ("replica.crash", "replica.hang", "replica.slow",
                    "probe.drop"):
            assert key in message

    @pytest.mark.parametrize("bad", [
        "seed",                       # no '='
        "seed=abc",                   # non-integer seed
        "worker.explode=1",           # unknown site
        "cache.corrupt=1.5",          # rate out of range
        "cache.corrupt=-0.1",
        "worker.crash=-1",            # negative count
        "serving.burst=0.5",          # burst below 1
        "hang.seconds=0",             # non-positive hang
        "replica.crash=1.5",          # replica rates validate eagerly
        "replica.hang=-0.1",
        "replica.slow=nope",
        "probe.drop=2",
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)


class TestDeterminism:
    def test_hash_unit_is_pure_and_uniform_ish(self):
        draws = [_hash_unit(42, "cache.corrupt", str(i)) for i in range(2000)]
        assert draws == [
            _hash_unit(42, "cache.corrupt", str(i)) for i in range(2000)
        ]
        assert all(0.0 <= d < 1.0 for d in draws)
        # crude uniformity: a 10% rate selects roughly 10% of tokens
        assert 120 < sum(d < 0.1 for d in draws) < 280

    def test_decisions_stable_across_instances(self):
        a = parse_fault_spec("seed=7,cell.error=0.3")
        b = parse_fault_spec("seed=7,cell.error=0.3")
        tokens = [f"direct:{i}:512:1" for i in range(100)]
        assert [a.cell_fails(t) for t in tokens] == [
            b.cell_fails(t) for t in tokens
        ]

    def test_seed_changes_decisions(self):
        tokens = [f"t{i}" for i in range(200)]
        a = FaultPlan(seed=1, cache_corrupt=0.5)
        b = FaultPlan(seed=2, cache_corrupt=0.5)
        assert [a.corrupts_write(t) for t in tokens] != [
            b.corrupts_write(t) for t in tokens
        ]

    def test_sites_are_independent(self):
        plan = FaultPlan(seed=3, cache_corrupt=0.5, cache_write_error=0.5)
        tokens = [f"t{i}" for i in range(200)]
        assert [plan.corrupts_write(t) for t in tokens] != [
            plan.write_fails(t) for t in tokens
        ]

    def test_worker_faults_fire_on_first_attempt_only(self):
        plan = FaultPlan(worker_crash=2, worker_hang=1)
        assert plan.worker_fault(0, 0) == "crash"
        assert plan.worker_fault(1, 0) == "crash"
        assert plan.worker_fault(2, 0) == "hang"
        assert plan.worker_fault(3, 0) is None
        assert all(plan.worker_fault(i, 1) is None for i in range(4))

    def test_burst_window_is_middle_third(self):
        plan = FaultPlan(serving_burst=2.0)
        assert plan.burst_window(300) == (100, 200, 2.0)
        assert FaultPlan().burst_window(300) == (0, 0, 1.0)
        assert plan.burst_window(2) == (0, 0, 1.0)  # too few requests

    def test_aborts_campaign_threshold(self):
        plan = FaultPlan(campaign_abort=5)
        assert not plan.aborts_campaign(4)
        assert plan.aborts_campaign(5) and plan.aborts_campaign(6)
        assert not FaultPlan().aborts_campaign(1000)

    def test_replica_fault_is_deterministic_per_dispatch(self):
        plan = FaultPlan(seed=4, replica_crash=0.3, replica_hang=0.3,
                         replica_slow=0.3)
        decisions = [plan.replica_fault("replica-1", d) for d in range(200)]
        again = [plan.replica_fault("replica-1", d) for d in range(200)]
        assert decisions == again
        assert {"crash", "hang", "slow"} <= {d for d in decisions if d}
        # replicas draw independently
        other = [plan.replica_fault("replica-2", d) for d in range(200)]
        assert decisions != other
        # crash outranks hang outranks slow: rate-1 crash always wins
        certain = FaultPlan(
            replica_crash=1.0, replica_hang=1.0, replica_slow=1.0
        )
        assert certain.replica_fault("r", 0) == "crash"

    def test_replica_fault_priority_and_off_by_default(self):
        assert FaultPlan().replica_fault("r", 0) is None
        hang_only = FaultPlan(replica_hang=1.0, replica_slow=1.0)
        assert hang_only.replica_fault("r", 0) == "hang"
        slow_only = FaultPlan(replica_slow=1.0)
        assert slow_only.replica_fault("r", 0) == "slow"

    def test_drops_probe_is_deterministic(self):
        plan = FaultPlan(seed=9, probe_drop=0.5)
        drops = [plan.drops_probe("replica-0", p) for p in range(100)]
        assert drops == [plan.drops_probe("replica-0", p) for p in range(100)]
        assert any(drops) and not all(drops)
        assert not any(
            FaultPlan(seed=9).drops_probe("replica-0", p) for p in range(100)
        )


class TestInjectScoping:
    def test_no_ambient_plan(self):
        assert active_plan() is None

    def test_inject_sets_global_and_env(self):
        plan = FaultPlan(seed=9, worker_crash=1)
        with inject(plan):
            assert active_plan() is plan
            assert os.environ[ENV_VAR] == plan.to_spec()
        assert active_plan() is None
        assert ENV_VAR not in os.environ

    def test_inject_accepts_spec_string(self):
        with inject("seed=5,cell.error=0.1") as plan:
            assert active_plan() is plan
            assert plan.cell_error == 0.1

    def test_scopes_nest_and_restore(self):
        outer = FaultPlan(seed=1, worker_crash=1)
        inner = FaultPlan(seed=2, worker_hang=1)
        with inject(outer):
            with inject(inner):
                assert active_plan() is inner
            assert active_plan() is outer
            assert os.environ[ENV_VAR] == outer.to_spec()

    def test_inject_none_masks_ambient_plan(self):
        with inject(FaultPlan(seed=1, worker_crash=1)):
            with inject(None):
                assert active_plan() is None
                assert ENV_VAR not in os.environ
            assert active_plan() is not None

    def test_env_var_alone_activates_a_plan(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "seed=11,cache.corrupt=0.25")
        plan = active_plan()
        assert plan is not None and plan.cache_corrupt == 0.25
        # memoized: the same spec returns the identical parsed object
        assert active_plan() is plan

    def test_malformed_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "worker.crash=maybe")
        with pytest.raises(FaultSpecError):
            active_plan()

    def test_mark_injected_counts(self):
        from repro import obs

        recorder = obs.enable()
        try:
            faults.mark_injected("test.site")
            faults.mark_injected("test.site", 2)
            assert recorder.snapshot()["counters"]["faults.injected.test.site"] == 3.0
        finally:
            obs.disable()
