"""Tests for batch-norm support in the mini-Darknet."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn import parse_cfg
from repro.nn.layer import ConvSpec
from repro.nn.models import yolov3_conv_specs, yolov3_network, yolov3_tiny_conv_specs
from repro.nn.network import Network

BN_CFG = """
[net]
channels=2
height=8
width=8

[convolutional]
batch_normalize=1
filters=4
size=3
stride=1
pad=1
activation=leaky

[convolutional]
filters=2
size=1
stride=1
activation=linear
"""


class TestCfgBatchNorm:
    def test_flag_parsed(self):
        net = parse_cfg(BN_CFG)
        assert net.layers[0].batch_normalize is True
        assert net.layers[1].batch_normalize is False


class TestNetworkBatchNorm:
    def test_bn_changes_output(self, rng):
        net = parse_cfg(BN_CFG)
        x = rng.standard_normal((2, 8, 8)).astype(np.float32)
        with_bn = net.forward(x)
        plain = Network(
            name="plain",
            layers=[
                ConvSpec(**{**spec.__dict__, "batch_normalize": False})
                if isinstance(spec, ConvSpec) else spec
                for spec in net.layers
            ],
        ).forward(x)
        assert not np.allclose(with_bn, plain)

    def test_bn_params_deterministic(self):
        net = parse_cfg(BN_CFG)
        a = net.batchnorm_params(0)
        b = parse_cfg(BN_CFG).batchnorm_params(0)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_bn_params_shapes(self):
        net = parse_cfg(BN_CFG)
        mean, var, scales, bias = net.batchnorm_params(0)
        assert mean.shape == (4,)
        assert (var > 0).all()

    def test_bn_params_non_conv_rejected(self):
        net = parse_cfg(BN_CFG + "\n[avgpool]\n")
        with pytest.raises(NetworkError):
            net.batchnorm_params(2)

    def test_forward_finite(self, rng):
        net = parse_cfg(BN_CFG)
        out = net.forward(rng.standard_normal((2, 8, 8)).astype(np.float32))
        assert np.isfinite(out).all()


class TestModelBatchNorm:
    def test_yolov3_bn_everywhere_except_heads(self):
        from repro.nn.models import yolov3_backbone_convs

        convs = yolov3_backbone_convs()
        for spec in convs:
            if spec.oc == 255:
                assert not spec.batch_normalize
                assert spec.activation == "linear"
            else:
                assert spec.batch_normalize
                assert spec.activation == "leaky"

    def test_tiny_matches_darknet_convention(self):
        for spec in yolov3_tiny_conv_specs():
            assert spec.batch_normalize == (spec.oc != 255)

    def test_yolov3_small_inference_still_works(self, rng):
        net = yolov3_network(input_size=64)
        out = net.forward(rng.standard_normal((3, 64, 64)).astype(np.float32))
        assert np.isfinite(out).all()

    def test_table1_features_unchanged(self):
        """BN must not leak into the selection features (paper: 12)."""
        spec = yolov3_conv_specs()[0]
        assert len(spec.features()) == 10
