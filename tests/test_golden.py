"""Golden-snapshot regression of the reproduction's headline numbers.

The calibration tests (`test_calibration_targets.py`) pin the *semantics*
(winners, bands); this file pins the *exact values* so that an accidental
model change cannot drift the reproduction silently while staying inside
the bands.  After an intentional calibration change, regenerate with::

    python -c "import tests.test_golden as g; g.regenerate()"

and document the change in EXPERIMENTS.md.
"""

import json
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "headlines.json"


def _campaign_baseline_rows(engine=None) -> dict:
    """One full campaign grid row per workload at the 512b x 1MB baseline:
    per-algorithm cycle totals over applicable layers, evaluated through
    the memoized engine (locks memoization against paper-number drift)."""
    from repro.algorithms.registry import ALGORITHM_NAMES
    from repro.engine import EvaluationEngine
    from repro.experiments.campaign import run_campaign
    from repro.experiments.configs import BASELINE, workload

    campaign = run_campaign(
        {"vgg16": workload("vgg16"), "yolov3": workload("yolov3")},
        [BASELINE],
        engine=engine if engine is not None else EvaluationEngine(),
    )
    return {
        wname: {
            algo: round(sum(
                r["cycles"]
                for r in campaign.filter(
                    workload=wname, algorithm=algo, applicable=True
                )
            ), 1)
            for algo in ALGORITHM_NAMES
        }
        for wname in ("vgg16", "yolov3")
    }


def _current(selector) -> dict:
    from repro.experiments.cli import run_experiment
    from repro.experiments.fig09_vgg_selection import run as f9
    from repro.experiments.fig10_yolo_selection import run as f10

    r9 = f9(selector=selector)
    r10 = f10(selector=selector)
    return {
        "campaign_baseline_rows": _campaign_baseline_rows(),
        "fig01_winners": run_experiment("fig01").data["winners"],
        "fig02_winners": run_experiment("fig02").data["winners"],
        "fig09_ratios": {
            k: round(v, 3) for k, v in r9.data["max_speedup_vs_single"].items()
        },
        "fig10_ratios": {
            k: round(v, 3) for k, v in r10.data["max_speedup_vs_single"].items()
        },
        "fig11_knee": {
            k: v
            for k, v in run_experiment("fig11").data["knee"].payload.items()
            if k != "cycles"
        },
        "paper1_vl_speedups": {
            str(k): round(v, 3)
            for k, v in run_experiment("paper1-vl").data["speedups"].items()
        },
    }


def regenerate() -> None:  # pragma: no cover - maintenance helper
    """Rewrite the golden file from the current model (see module docstring)."""
    from repro.selection import AlgorithmSelector, build_dataset

    selector = AlgorithmSelector(n_estimators=60)
    report = selector.train(build_dataset())
    golden = {
        "_comment": GOLDEN_PATH.read_text() and json.loads(
            GOLDEN_PATH.read_text()
        ).get("_comment", ""),
        **_current(selector),
        "rf_mean_accuracy": round(report.mean_accuracy, 3),
    }
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1))


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenHeadlines:
    def test_winners_exact(self, golden):
        from repro.experiments.cli import run_experiment

        assert run_experiment("fig01").data["winners"] == golden["fig01_winners"]
        assert run_experiment("fig02").data["winners"] == golden["fig02_winners"]

    def test_selection_ratios(self, golden, trained_selector):
        from repro.experiments.fig09_vgg_selection import run as f9
        from repro.experiments.fig10_yolo_selection import run as f10

        for run_fn, key in ((f9, "fig09_ratios"), (f10, "fig10_ratios")):
            ratios = run_fn(selector=trained_selector).data[
                "max_speedup_vs_single"
            ]
            for name, expected in golden[key].items():
                assert ratios[name] == pytest.approx(expected, rel=1e-3), name

    def test_pareto_knee(self, golden):
        from repro.experiments.cli import run_experiment

        knee = run_experiment("fig11").data["knee"].payload
        assert knee["vlen"] == golden["fig11_knee"]["vlen"]
        assert knee["l2_mib"] == golden["fig11_knee"]["l2_mib"]
        assert knee["policy"] == golden["fig11_knee"]["policy"]

    def test_paper1_vl_curve(self, golden):
        from repro.experiments.cli import run_experiment

        speedups = run_experiment("paper1-vl").data["speedups"]
        for vl, expected in golden["paper1_vl_speedups"].items():
            assert speedups[int(vl)] == pytest.approx(expected, rel=1e-3), vl

    def test_rf_accuracy(self, golden, trained_selector):
        assert trained_selector.report.mean_accuracy == pytest.approx(
            golden["rf_mean_accuracy"], abs=0.02
        )

    def test_campaign_rows_via_engine(self, golden):
        """Campaign rows evaluated through the memoized engine must match
        the golden snapshot — and stay bit-identical whether served cold,
        warm, or computed directly without the engine."""
        from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm, layer_cycles
        from repro.engine import EvaluationEngine
        from repro.experiments.configs import BASELINE, workload

        engine = EvaluationEngine()
        cold = _campaign_baseline_rows(engine)
        warm = _campaign_baseline_rows(engine)  # cache-served second pass
        assert cold == warm == golden["campaign_baseline_rows"]
        assert engine.cache.stats.hits > 0
        # engine bypass: direct layer_cycles totals agree exactly
        for wname, row in cold.items():
            for algo, expected in row.items():
                a = get_algorithm(algo)
                direct = sum(
                    layer_cycles(algo, s, BASELINE, fallback=False).cycles
                    for s in workload(wname)
                    if a.applicable(s)
                )
                assert round(direct, 1) == expected, (wname, algo)
