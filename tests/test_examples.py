"""Smoke tests: every example script must run end to end.

Examples are part of the public deliverable; these tests import each one as
a module and execute its ``main()`` so the examples cannot silently rot.
The slow serving example runs with a reduced budget.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "algorithm" in out and "est. cycles" in out

    def test_codesign_sweep(self, capsys):
        load_example("codesign_sweep").main("vgg16")
        out = capsys.readouterr().out
        assert "512 bits x 1 MB" in out
        assert "dir" in out and "g6" in out

    def test_custom_network(self, capsys):
        load_example("custom_network").main()
        out = capsys.readouterr().out
        assert "mini-detector" in out
        assert "numerically safe" in out

    def test_rvv_playground(self, capsys):
        load_example("rvv_playground").main()
        out = capsys.readouterr().out
        assert "SAXPY" in out and "tiny GEMM" in out

    def test_design_recommender(self, capsys):
        load_example("design_recommender").main(30.0)
        out = capsys.readouterr().out
        assert "recommended design" in out and "p99" in out

    @pytest.mark.slow
    def test_model_serving_selector(self, capsys):
        load_example("model_serving_selector").main()
        out = capsys.readouterr().out
        assert "Predicted per-layer algorithms" in out

    def test_all_examples_covered(self):
        """Every example file has a smoke test here."""
        tested = {
            "quickstart", "codesign_sweep", "custom_network",
            "rvv_playground", "design_recommender", "model_serving_selector",
        }
        on_disk = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert on_disk == tested
