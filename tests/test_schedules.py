"""Structural tests of the analytical schedules (all four algorithms)."""

import math

import pytest

from repro.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.algorithms.gemm_kernels import BLOCK_K, BLOCK_N, gemm3_phase, gemm6_phases
from repro.algorithms.winograd import TUPLE_ELEMS, WinogradConv, tile_counts
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig


HW = HardwareConfig.paper2_rvv(512, 1.0)
SPEC_3X3 = ConvSpec(ic=64, oc=128, ih=56, iw=56, kh=3, kw=3)
SPEC_1X1 = ConvSpec(ic=256, oc=128, ih=28, iw=28, kh=1, kw=1)


class TestScheduleShapes:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_schedules_evaluate(self, name):
        spec = SPEC_3X3
        phases = get_algorithm(name).schedule(spec, HW)
        assert phases, "empty schedule"
        result = AnalyticalTimingModel(HW).evaluate(name, phases)
        assert result.cycles > 0
        assert result.dram_bytes > 0

    def test_gemm_variants_skip_im2col_for_1x1(self):
        g3 = get_algorithm("im2col_gemm3").schedule(SPEC_1X1, HW)
        g6 = get_algorithm("im2col_gemm6").schedule(SPEC_1X1, HW)
        assert all(p.name != "im2col" for p in g3 + g6)
        g3_3x3 = get_algorithm("im2col_gemm3").schedule(SPEC_3X3, HW)
        assert any(p.name == "im2col" for p in g3_3x3)

    def test_winograd_phase_names(self):
        phases = get_algorithm("winograd").schedule(SPEC_3X3, HW)
        names = [p.name for p in phases]
        assert names == [
            "wg_weight_transform",
            "wg_input_transform",
            "wg_tuple_gemm",
            "wg_output_transform",
        ]

    def test_winograd_offline_weights_drops_phase(self):
        offline = WinogradConv(online_weight_transform=False)
        names = [p.name for p in offline.schedule(SPEC_3X3, HW)]
        assert "wg_weight_transform" not in names

    def test_direct_phases(self):
        names = [p.name for p in get_algorithm("direct").schedule(SPEC_3X3, HW)]
        assert names == ["direct_layout", "direct_kernel"]


class TestGemmScheduleMaths:
    def test_gemm3_fma_count(self):
        m, k, n = 32, 27, 1000
        phase = gemm3_phase(m, k, n, HW)
        nj = math.ceil(n / HW.vlmax_f32)
        assert phase.vector_ops == nj * k * m

    def test_gemm3_b_reuse_window_grows_with_vl(self):
        """The co-design mechanism behind the paper's Table III."""
        short = gemm3_phase(64, 576, 10000, HardwareConfig.paper2_rvv(512, 1.0))
        long = gemm3_phase(64, 576, 10000, HardwareConfig.paper2_rvv(4096, 1.0))
        ws = {s.name: s.reuse_ws for s in short.streams}
        wl = {s.name: s.reuse_ws for s in long.streams}
        assert wl["col"] == 8 * ws["col"]

    def test_gemm3_a_stream_is_scalar(self):
        phase = gemm3_phase(64, 64, 64, HW)
        a = next(s for s in phase.streams if s.name == "A_weights")
        assert a.scalar_access

    def test_gemm6_blocks_cap_inner_strip(self):
        """The 6-loop inner strip never exceeds blockN elements."""
        phases = gemm6_phases(64, 576, 100000, HardwareConfig.paper2_rvv(16384, 1.0))
        kernel = next(p for p in phases if p.name == "gemm6_kernel")
        assert kernel.vector_active <= BLOCK_N

    def test_gemm6_packed_block_fits_1mb(self):
        """The paper tuned 16x512x128 so the packed-B block is L2-resident."""
        assert BLOCK_K * BLOCK_N * 4 <= 1024 * 1024

    def test_gemm6_exact_strip_tails(self):
        """N slightly over one block must not double the strip count."""
        full = gemm6_phases(16, 128, BLOCK_N, HW)[1].vector_ops
        tail = gemm6_phases(16, 128, BLOCK_N + 16, HW)[1].vector_ops
        assert tail < 1.1 * full


class TestWinogradScheduleMaths:
    def test_tile_counts(self):
        assert tile_counts(ConvSpec(ic=4, oc=4, ih=12, iw=12, kh=3, kw=3)) == (2, 2)
        assert tile_counts(ConvSpec(ic=4, oc=4, ih=13, iw=14, kh=3, kw=3)) == (3, 3)

    def test_tuple_saturates_beyond_2048(self):
        """64 tuple elements = 2048 bits: no gain at 4096 bits."""
        spec = ConvSpec(ic=64, oc=64, ih=48, iw=48, kh=3, kw=3)
        wg = get_algorithm("winograd")

        def tuple_cost(vl):
            hw = HardwareConfig.paper2_rvv(vl, 1.0)
            phases = wg.schedule(spec, hw)
            model = AnalyticalTimingModel(hw)
            return model.phase_cycles(
                next(p for p in phases if p.name == "wg_tuple_gemm")
            ).cycles

        assert tuple_cost(2048) == pytest.approx(tuple_cost(4096), rel=0.01)
        assert tuple_cost(512) > tuple_cost(2048)

    def test_tuple_elems_is_64(self):
        assert TUPLE_ELEMS == 64

    def test_weight_transform_quadratic_in_channels(self):
        wg = get_algorithm("winograd")
        small = wg.schedule(ConvSpec(ic=64, oc=64, ih=30, iw=30, kh=3, kw=3), HW)
        big = wg.schedule(ConvSpec(ic=256, oc=256, ih=30, iw=30, kh=3, kw=3), HW)
        ws = next(p for p in small if p.name == "wg_weight_transform").vector_ops
        wb = next(p for p in big if p.name == "wg_weight_transform").vector_ops
        assert wb == pytest.approx(16 * ws, rel=0.05)

    def test_fallback_path_for_ic3(self):
        """IC < 4: the transforms run at 1 channel per group (slow)."""
        wg = get_algorithm("winograd")
        spec3 = ConvSpec(ic=3, oc=16, ih=32, iw=32, kh=3, kw=3)
        spec4 = ConvSpec(ic=4, oc=16, ih=32, iw=32, kh=3, kw=3)
        it3 = next(p for p in wg.schedule(spec3, HW) if p.name == "wg_input_transform")
        it4 = next(p for p in wg.schedule(spec4, HW) if p.name == "wg_input_transform")
        assert it3.vector_active < it4.vector_active


class TestDirectScheduleMaths:
    def test_utilization_capped_by_oc(self):
        """Active elements per FMA = OC when OC < VL."""
        hw = HardwareConfig.paper2_rvv(4096, 1.0)  # 128 f32 lanes
        spec = ConvSpec(ic=16, oc=32, ih=20, iw=20, kh=3, kw=3)
        kernel = get_algorithm("direct").schedule(spec, hw)[1]
        assert kernel.vector_active == 32.0

    def test_weight_panel_reuse_window_grows_with_vl(self):
        """Direct x cache co-design: the per-group panel scales with VL."""
        spec = ConvSpec(ic=512, oc=512, ih=14, iw=14, kh=3, kw=3)
        k512 = get_algorithm("direct").schedule(
            spec, HardwareConfig.paper2_rvv(512, 1.0)
        )[1]
        k4096 = get_algorithm("direct").schedule(
            spec, HardwareConfig.paper2_rvv(4096, 1.0)
        )[1]
        ws512 = next(s for s in k512.streams if s.name == "weights").reuse_ws
        ws4096 = next(s for s in k4096.streams if s.name == "weights").reuse_ws
        assert ws4096 > ws512

    def test_input_is_scalar_stream(self):
        kernel = get_algorithm("direct").schedule(SPEC_3X3, HW)[1]
        inp = next(s for s in kernel.streams if s.name == "input")
        assert inp.scalar_access and inp.resident_source
