"""Property-based validation of the vector machine's semantics.

A Spike-style self-check: hypothesis generates random straight-line vector
programs, which run both on the :class:`VectorMachine` and on a plain NumPy
interpreter; the architectural state must match exactly.  This covers the
instruction semantics far more broadly than the hand-written kernel tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import VectorMachine

N_BUF = 64  # elements per memory buffer
N_REG = 8  # registers the generator uses

op_kind = st.sampled_from(
    ["vload", "vstore", "vfadd", "vfsub", "vfmul", "vfmax", "vfmacc",
     "vfmacc_vf", "vfmul_vf", "vbroadcast", "vmv"]
)


@st.composite
def programs(draw):
    """A random vsetvl + instruction sequence with in-range operands."""
    vl = draw(st.integers(1, 16))
    n_instr = draw(st.integers(1, 25))
    instrs = []
    for _ in range(n_instr):
        kind = draw(op_kind)
        regs = [draw(st.integers(0, N_REG - 1)) for _ in range(3)]
        offset = draw(st.integers(0, N_BUF - vl))
        scalar = draw(
            st.floats(-4, 4, allow_nan=False, allow_infinity=False, width=32)
        )
        instrs.append((kind, regs, offset, scalar))
    return vl, instrs


class NumpyOracle:
    """Reference interpreter over plain arrays."""

    def __init__(self, vl: int, mem: np.ndarray, vlen_elems: int) -> None:
        self.vl = vl
        self.mem = mem.copy()
        self.regs = np.zeros((N_REG, vlen_elems), dtype=np.float32)

    def step(self, kind, regs, offset, scalar):
        d, a, b = regs
        v = self.vl
        if kind == "vload":
            self.regs[d, :v] = self.mem[offset : offset + v]
        elif kind == "vstore":
            self.mem[offset : offset + v] = self.regs[d, :v]
        elif kind == "vfadd":
            self.regs[d, :v] = self.regs[a, :v] + self.regs[b, :v]
        elif kind == "vfsub":
            self.regs[d, :v] = self.regs[a, :v] - self.regs[b, :v]
        elif kind == "vfmul":
            self.regs[d, :v] = self.regs[a, :v] * self.regs[b, :v]
        elif kind == "vfmax":
            self.regs[d, :v] = np.maximum(self.regs[a, :v], self.regs[b, :v])
        elif kind == "vfmacc":
            self.regs[d, :v] = (
                self.regs[d, :v] + self.regs[a, :v] * self.regs[b, :v]
            )
        elif kind == "vfmacc_vf":
            self.regs[d, :v] = self.regs[d, :v] + np.float32(scalar) * self.regs[
                b, :v
            ]
        elif kind == "vfmul_vf":
            self.regs[d, :v] = np.float32(scalar) * self.regs[b, :v]
        elif kind == "vbroadcast":
            self.regs[d, :v] = np.float32(scalar)
        elif kind == "vmv":
            self.regs[d, :v] = self.regs[a, :v]


def run_machine(vl, instrs, mem0):
    machine = VectorMachine(512, trace=False)
    buf = machine.alloc_from("mem", mem0)
    machine.vsetvl(vl)
    for kind, regs, offset, scalar in instrs:
        d, a, b = regs
        if kind == "vload":
            machine.vload(d, buf, offset)
        elif kind == "vstore":
            machine.vstore(d, buf, offset)
        elif kind == "vfadd":
            machine.vfadd(d, a, b)
        elif kind == "vfsub":
            machine.vfsub(d, a, b)
        elif kind == "vfmul":
            machine.vfmul(d, a, b)
        elif kind == "vfmax":
            machine.vfmax(d, a, b)
        elif kind == "vfmacc":
            machine.vfmacc(d, a, b)
        elif kind == "vfmacc_vf":
            machine.vfmacc_vf(d, scalar, b)
        elif kind == "vfmul_vf":
            machine.vfmul_vf(d, scalar, b)
        elif kind == "vbroadcast":
            machine.vbroadcast(d, scalar)
        elif kind == "vmv":
            machine.vmv(d, a)
    regs = np.stack([machine.reg_values(r, vl=16) for r in range(N_REG)])
    return buf.array.copy(), regs


class TestRandomPrograms:
    @given(program=programs(), seed=st.integers(0, 2**16))
    @settings(max_examples=120, deadline=None)
    def test_machine_matches_numpy_oracle(self, program, seed):
        vl, instrs = program
        mem0 = np.random.default_rng(seed).uniform(
            -2, 2, N_BUF
        ).astype(np.float32)
        oracle = NumpyOracle(vl, mem0, vlen_elems=16)
        for step in instrs:
            oracle.step(*step)
        mem_m, regs_m = run_machine(vl, instrs, mem0)
        np.testing.assert_array_equal(mem_m, oracle.mem)
        # active elements match exactly; tail elements are undisturbed and
        # both sides start from zeroed registers, so full compare is valid
        np.testing.assert_array_equal(regs_m, oracle.regs)
