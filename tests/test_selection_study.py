"""Tests for the classifier-comparison study (Paper II §4.3)."""

import numpy as np
import pytest

from repro.experiments.selection_study import classifier_zoo, run
from repro.selection.dataset import build_dataset, paper_layers
from repro.simulator.hwconfig import HardwareConfig


@pytest.fixture(scope="module")
def small_dataset():
    """A reduced grid (28 layers x 4 configs) keeps the study test fast."""
    configs = [
        HardwareConfig.paper2_rvv(vl, l2)
        for vl in (512, 4096)
        for l2 in (1.0, 64.0)
    ]
    return build_dataset(paper_layers(), configs)


class TestClassifierZoo:
    def test_six_families(self):
        zoo = classifier_zoo()
        assert set(zoo) == {
            "random_forest", "decision_tree", "knn", "naive_bayes",
            "logistic", "gradient_boosting",
        }

    def test_factories_produce_fresh_models(self):
        zoo = classifier_zoo()
        assert zoo["random_forest"]() is not zoo["random_forest"]()


class TestStudy:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        return run(dataset=small_dataset)

    def test_all_classifiers_evaluated(self, result):
        assert len(result.data["accuracies"]) == 6
        for scores in result.data["accuracies"].values():
            assert len(scores) == 5
            assert all(0.0 <= s <= 1.0 for s in scores)

    def test_random_forest_wins_or_ties(self, result):
        """The paper selects the RF for its accuracy — it must lead here."""
        means = {
            name: float(np.mean(scores))
            for name, scores in result.data["accuracies"].items()
        }
        assert means["random_forest"] >= max(means.values()) - 0.02

    def test_rf_beats_weak_baselines_clearly(self, result):
        means = {
            name: float(np.mean(scores))
            for name, scores in result.data["accuracies"].items()
        }
        assert means["random_forest"] > means["naive_bayes"] + 0.05

    def test_report_attached(self, result):
        assert result.data["rf_report"].mean_accuracy > 0.85
        assert "classifier" in result.table.headers[0]


class TestPhaseDramHelper:
    def test_phase_dram_bytes_sums_streams(self):
        from repro.simulator.analytical.cachemodel import (
            phase_dram_bytes,
            stream_dram_bytes,
        )
        from repro.simulator.analytical.phases import DataStream

        streams = (
            DataStream("a", bytes=1000.0),
            DataStream("b", bytes=500.0, passes=3.0, reuse_ws=1e9),
        )
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        assert phase_dram_bytes(streams, hw) == pytest.approx(
            sum(stream_dram_bytes(s, hw) for s in streams)
        )
