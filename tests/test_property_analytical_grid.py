"""Property tests for the tensorized analytical grid (hypothesis).

One invariant, attacked from random directions: for *any* batch of
(schedule, hardware, calibration) cells — random phase tables, random
stream shapes, VLEN/LMUL across the paper's range, both
``VectorUnitStyle``s, randomized positive calibrations — the grid
evaluator (numpy backend and the compiled kernel's algorithm) returns
``cycles``/``dram_bytes``/``bound`` and every per-phase lane column
**bit-identical** to the per-cell :class:`AnalyticalTimingModel`.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.analytical import grid
from repro.simulator.analytical.calibration import Calibration
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

#: Strictly positive, boringly finite floats: every calibration constant
#: divides something somewhere, so zero would change exceptions (Python
#: raises ZeroDivisionError, ndarrays yield inf), not just values.
_pos = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)
_frac = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
_ops = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
_bytes = st.floats(
    min_value=0.0, max_value=1e10, allow_nan=False, allow_infinity=False
)

calibrations = st.builds(
    Calibration,
    vector_issue=_pos,
    vmem_issue=_pos,
    nonunit_penalty=_pos,
    scalar_cpi=_pos,
    dram_efficiency=_pos,
    l2_bytes_per_cycle=_pos,
    phase_startup=st.floats(0.0, 1e5, allow_nan=False, allow_infinity=False),
    latency_exposure=_frac,
    prefetch_latency_factor=_frac,
    decoupled_deadtime=st.floats(
        0.0, 16.0, allow_nan=False, allow_infinity=False
    ),
    enable_scalar_exposure=st.booleans(),
    enable_resident_source=st.booleans(),
)

integrated = st.builds(
    HardwareConfig.paper2_rvv,
    vlen_bits=st.sampled_from([512, 1024, 2048, 4096]),
    l2_mib=st.sampled_from([0.25, 1.0, 4.0, 16.0, 64.0]),
)
decoupled = st.builds(
    HardwareConfig.paper1_riscvv,
    vlen_bits=st.sampled_from([512, 1024, 2048, 4096]),
    l2_mib=st.sampled_from([0.25, 1.0, 4.0, 64.0]),
    lanes=st.sampled_from([2, 4, 8]),
)
hw_configs = st.one_of(integrated, decoupled).flatmap(
    lambda hw: st.builds(
        hw.with_,
        lmul=st.sampled_from([1, 2, 4, 8]),
        software_prefetch=st.booleans(),
        hardware_prefetch=st.booleans(),
    )
)

streams = st.builds(
    DataStream,
    name=st.sampled_from(["in", "wgt", "out", "col", "u", "v"]),
    bytes=_bytes,
    passes=st.floats(1.0, 64.0, allow_nan=False, allow_infinity=False),
    reuse_ws=_bytes,
    is_write=st.booleans(),
    scalar_access=st.booleans(),
    resident_source=st.booleans(),
)


@st.composite
def phases_(draw) -> Phase:
    """A valid Phase: ops imply a positive matching active count."""
    vector_ops = draw(_ops)
    vmem_ops = draw(_ops)
    return Phase(
        name=draw(st.sampled_from(["pack", "gemm", "transform", "main"])),
        vector_ops=vector_ops,
        vector_active=draw(_pos) if vector_ops else 0.0,
        vmem_ops=vmem_ops,
        vmem_active=draw(_pos) if vmem_ops else 0.0,
        nonunit_fraction=draw(_frac),
        scalar_ops=draw(_ops),
        streams=tuple(draw(st.lists(streams, min_size=0, max_size=4))),
    )


cells = st.tuples(
    st.lists(phases_(), min_size=1, max_size=4), hw_configs, calibrations
)


# ---------------------------------------------------------------------- #
# the parity property
# ---------------------------------------------------------------------- #
@given(batch=st.lists(cells, min_size=1, max_size=6))
@settings(max_examples=120, deadline=None)
def test_grid_bit_identical_to_per_cell_model(batch):
    """Both grid backends == per-cell model, field for field, bit for bit."""
    grid_cells = [
        (f"algo{i}", phases, hw, cal)
        for i, (phases, hw, cal) in enumerate(batch)
    ]
    expected = [
        AnalyticalTimingModel(hw, cal).evaluate(f"algo{i}", phases)
        for i, (phases, hw, cal) in enumerate(batch)
    ]

    table = grid.PhaseTable.from_cells(grid_cells)
    for rows in (grid._evaluate_rows_numpy, grid._evaluate_rows_compiled):
        backend = grid.GridBackend("test", rows)
        # errstate: the *undecorated* kernel's scalar numpy ops warn where
        # plain Python floats are silent; values are identical either way
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            got = backend.evaluate_rows(table)
        r = 0
        for record in expected:
            for p in record.phases:
                assert got.vector_cycles[r] == p.vector_cycles
                assert got.scalar_cycles[r] == p.scalar_cycles
                assert got.l2_cycles[r] == p.l2_cycles
                assert got.dram_cycles[r] == p.dram_cycles
                assert got.latency_cycles[r] == p.latency_cycles
                assert got.startup_cycles[r] == p.startup_cycles
                assert got.dram_bytes[r] == p.dram_bytes
                assert got.l2_bytes[r] == p.l2_bytes
                r += 1
        assert r == table.n_rows

    # and the assembled records agree on the derived quantities too
    records = grid.evaluate_phase_table(table, backend="numpy")
    for got_rec, want in zip(records, expected):
        assert got_rec.cycles == want.cycles
        assert got_rec.dram_bytes == want.dram_bytes
        for gp, wp in zip(got_rec.phases, want.phases):
            assert gp.bound == wp.bound
