"""Tests for the Paper I cross-architecture optimization study."""

import pytest

from repro.experiments.cli import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("paper1-archcompare")


class TestArchCompare:
    def test_three_platforms(self, result):
        assert len(result.data["ratios"]) == 3

    def test_sve_gains_more_from_blocking_than_decoupled_rvv(self, result):
        """Paper I: the 6-loop kernel is worth ~15% on ARM-SVE@gem5 but
        nothing on the decoupled RISC-VV — the integrated gem5 platform
        must show the larger relative 6-loop benefit."""
        r = result.data["ratios"]
        sve = r["ARM-SVE@gem5 (integrated)"]
        rvv = r["RISC-VV@gem5 (decoupled)"]
        assert sve < rvv

    def test_ratios_in_sane_band(self, result):
        for label, ratio in result.data["ratios"].items():
            assert 0.4 <= ratio <= 1.5, label

    def test_a64fx_deviation_documented(self):
        """The paper's 2x A64FX 6-loop win is NOT reproduced (the model has
        no prefetch x packed-layout interaction); EXPERIMENTS.md must say so."""
        from pathlib import Path

        text = Path(__file__).resolve().parent.parent.joinpath(
            "EXPERIMENTS.md"
        ).read_text()
        assert "archcompare" in text or "A64FX" in text
