"""Tests for the shared experiment helpers."""

import pytest

from repro.experiments.common import (
    comparison_table,
    per_layer_seconds,
    sweep_seconds,
)
from repro.experiments.configs import BASELINE, FREQ_GHZ, grid, workload
from repro.simulator.hwconfig import HardwareConfig


class TestPerLayerSeconds:
    def test_shapes_and_none_handling(self):
        specs = workload("yolov3")[:4]
        data = per_layer_seconds(specs, BASELINE)
        assert set(data) == {"direct", "im2col_gemm3", "im2col_gemm6",
                             "winograd"}
        # layer 2 (stride 2) and 3 (1x1) have no winograd bar
        assert data["winograd"][1] is None and data["winograd"][2] is None
        assert all(v is not None for v in data["direct"])

    def test_seconds_are_cycles_over_frequency(self):
        from repro.algorithms.registry import layer_cycles

        spec = workload("vgg16")[0]
        data = per_layer_seconds([spec], BASELINE)
        expected = layer_cycles("direct", spec, BASELINE,
                                fallback=False).cycles / (FREQ_GHZ * 1e9)
        assert data["direct"][0] == pytest.approx(expected)

    def test_fallback_mode_fills_gaps(self):
        specs = workload("yolov3")[:3]
        data = per_layer_seconds(specs, BASELINE, skip_inapplicable=False)
        assert all(v is not None for v in data["winograd"])

    def test_single_registry_lookup_per_algorithm(self, monkeypatch):
        """The registry lookup is hoisted out of the per-layer loop: exactly
        one ``get_algorithm`` call per algorithm per invocation, however
        many layers are evaluated."""
        import repro.experiments.common as common
        from repro.algorithms.registry import get_algorithm as real_lookup

        calls: list[str] = []

        def counting_lookup(name: str):
            calls.append(name)
            return real_lookup(name)

        monkeypatch.setattr(common, "get_algorithm", counting_lookup)
        specs = workload("vgg16")[:5]
        per_layer_seconds(specs, BASELINE)
        assert sorted(calls) == sorted(
            ["direct", "im2col_gemm3", "im2col_gemm6", "winograd"]
        )


class TestComparisonTable:
    def test_renders_na(self):
        specs = workload("yolov3")[:3]
        data = per_layer_seconds(specs, BASELINE)
        table = comparison_table("t", specs, data)
        assert "n/a" in table.render()
        assert len(table.rows) == 3


class TestSweepSeconds:
    def test_keys_cover_grid(self):
        specs = workload("vgg16")[:2]
        configs = [HardwareConfig.paper2_rvv(512, 1.0),
                   HardwareConfig.paper2_rvv(2048, 1.0)]
        out = sweep_seconds(specs, configs, algorithms=("direct",))
        assert set(out) == {("direct", "512 bits x 1 MB"),
                            ("direct", "2048 bits x 1 MB")}
        assert all(len(v) == 2 for v in out.values())

    def test_configs_grid_helper(self):
        assert len(grid()) == 16
