"""Tests for the contention ablation and the design recommender."""

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.experiments.cli import run_experiment
from repro.nn.models import vgg16_conv_specs
from repro.serving import recommend_design


class TestContentionAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ablation-contention")

    def test_contention_flips_choices(self, result):
        """The paper's §1 claim: co-running inferences change the optimal
        algorithm — several layers must flip between co-location levels."""
        assert len(result.data["flipped_layers"]) >= 3

    def test_alone_and_packed_differ(self, result):
        w = result.data["winners"]
        assert w[1] != w[64]

    def test_early_layers_stable(self, result):
        """L1's Direct win is dimension-driven, not cache-driven."""
        w = result.data["winners"]
        assert all(w[n][0] == "direct" for n in w)


class TestRecommender:
    @pytest.fixture(scope="class")
    def specs(self):
        return vgg16_conv_specs()

    def test_fits_budget(self, specs):
        rec = recommend_design(specs, area_budget_mm2=30.0)
        assert rec.area_mm2 <= 30.0
        assert rec.images_per_second > 0

    def test_bigger_budget_more_throughput(self, specs):
        small = recommend_design(specs, 6.0)
        big = recommend_design(specs, 60.0)
        assert big.images_per_second > small.images_per_second

    def test_latency_floor_respected(self, specs):
        rec = recommend_design(specs, 60.0, max_latency_s=0.4)
        assert rec.latency_s <= 0.4

    def test_latency_floor_changes_design(self, specs):
        free = recommend_design(specs, 60.0)
        tight = recommend_design(specs, 60.0, max_latency_s=0.9 * free.latency_s)
        assert tight.latency_s < free.latency_s

    def test_impossible_budget_raises(self, specs):
        with pytest.raises(ExperimentError):
            recommend_design(specs, 0.1)

    def test_invalid_budget(self, specs):
        with pytest.raises(ConfigError):
            recommend_design(specs, -1.0)

    def test_selection_policy_beats_single(self, specs):
        opt = recommend_design(specs, 30.0, policy="optimal")
        single = recommend_design(specs, 30.0, policy="im2col_gemm6")
        assert opt.images_per_second >= single.images_per_second

    def test_describe(self, specs):
        rec = recommend_design(specs, 30.0)
        text = rec.describe()
        assert "cores" in text and "img/s" in text
