"""Tests for the Paper I Table III reproduction (avg VL + miss rates)."""

import pytest

from repro.experiments.cli import run_experiment


@pytest.fixture(scope="module")
def table3():
    return run_experiment("paper1-table3")


class TestAverageVectorLength:
    def test_matches_paper_within_5pct(self, table3):
        """The strip-mined kernels consume nearly the full vector length."""
        for vl, (avg, _) in table3.data["measured"].items():
            paper_avg = table3.data["paper"][vl][0]
            assert avg == pytest.approx(paper_avg, rel=0.05), vl

    def test_near_full_utilization(self, table3):
        for vl, (avg, _) in table3.data["measured"].items():
            assert avg >= 0.9 * vl


class TestMissRates:
    def test_miss_rate_rises_with_vector_length(self, table3):
        """Table III's trend: longer vectors push the L2 miss rate up
        (the B-panel reuse window grows with gvl)."""
        rates = [m for _, m in
                 (table3.data["measured"][vl] for vl in sorted(table3.data["measured"]))]
        assert rates == sorted(rates)

    def test_magnitude_band(self, table3):
        """Paper: 32% -> 79%.  We accept the same >2x growth with a lower
        base (the analytical model only counts DRAM-filled lines as misses)."""
        first = table3.data["measured"][512][1]
        last = table3.data["measured"][16384][1]
        assert 10.0 <= first <= 45.0
        assert last >= 2.0 * first
