"""Tests for the roofline module, the autovec baseline, and Paper I's
speedup ladder."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.experiments.cli import run_experiment
from repro.isa import VectorMachine
from repro.nn.layer import ConvSpec
from repro.nn.reference import conv2d_reference
from repro.simulator.hwconfig import HardwareConfig
from repro.simulator.roofline import (
    attainable_fraction,
    machine_balance,
    peak_flops_per_cycle,
    roofline,
    sustained_fraction,
)


class TestRoofline:
    def test_peak_flops(self):
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        assert peak_flops_per_cycle(hw) == 32.0  # 16 lanes x FMA

    def test_machine_balance_positive(self):
        assert machine_balance(HardwareConfig.a64fx()) > 0

    def test_low_ai_layer_is_memory_bound(self):
        hw = HardwareConfig.paper2_rvv(4096, 1.0)  # huge peak, same DRAM
        spec = ConvSpec(ic=3, oc=4, ih=64, iw=64, kh=1, kw=1)
        assert attainable_fraction(spec, hw) < 1.0

    def test_sustained_below_attainable_shape(self):
        hw = HardwareConfig.a64fx()
        spec = ConvSpec(ic=256, oc=256, ih=32, iw=32, kh=3, kw=3)
        assert 0.0 < sustained_fraction(spec, hw) <= 1.0

    def test_roofline_list(self):
        hw = HardwareConfig.a64fx()
        pts = roofline([ConvSpec(ic=8, oc=8, ih=16, iw=16)], hw)
        assert len(pts) == 1 and pts[0].arithmetic_intensity > 0


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("paper1-roofline")

    def test_ai_matches_paper_exactly(self, result):
        """Table IV's AI column is exact arithmetic over Table 1 dims."""
        for label, paper in result.data["paper_ai"].items():
            ours = result.data["ai"][label]
            assert ours == pytest.approx(paper, rel=0.035), label

    def test_low_ai_layers_sustain_least(self, result):
        """Paper I: layers with small weight matrices (low AI) have the
        lowest sustained performance."""
        ai = result.data["ai"]
        sustained = result.data["sustained"]
        labels = sorted(ai, key=ai.get)
        assert sustained[labels[0]] == min(sustained.values())
        assert sustained[labels[0]] < 0.7 < max(sustained.values())


class TestAutovecKernel:
    def test_functional_correctness(self, rng, small_spec, small_tensors):
        x, w = small_tensors
        out = get_algorithm("im2col_gemm_autovec").run(small_spec, x, w)
        np.testing.assert_allclose(
            out, conv2d_reference(small_spec, x, w), atol=1e-4
        )

    def test_vectorized_correctness(self, rng, small_spec, small_tensors):
        x, w = small_tensors
        machine = VectorMachine(512, trace=False)
        out = get_algorithm("im2col_gemm_autovec").run_vectorized(
            small_spec, x, w, machine
        )
        np.testing.assert_allclose(
            out, conv2d_reference(small_spec, x, w), atol=1e-4
        )

    def test_more_memory_ops_than_manual(self, small_spec, small_tensors):
        """The ikj order's signature: ~3 memory ops per FMA."""
        x, w = small_tensors

        def mem_per_vec(name):
            m = VectorMachine(512, trace=False)
            get_algorithm(name).run_vectorized(small_spec, x, w, m)
            s = m.trace.stats
            return s.memory_instrs / max(1, s.vector_instrs)

        assert mem_per_vec("im2col_gemm_autovec") > 2 * mem_per_vec("im2col_gemm3")

    def test_slower_than_manual_everywhere(self):
        from repro.algorithms.registry import layer_cycles

        spec = ConvSpec(ic=64, oc=64, ih=56, iw=56, kh=3, kw=3)
        for vl in (512, 2048):
            hw = HardwareConfig.paper2_rvv(vl, 1.0)
            auto = layer_cycles("im2col_gemm_autovec", spec, hw).cycles
            manual = layer_cycles("im2col_gemm3", spec, hw).cycles
            assert auto > 1.5 * manual

    def test_unrolled_variant_between(self):
        from repro.algorithms.registry import layer_cycles

        spec = ConvSpec(ic=64, oc=64, ih=56, iw=56, kh=3, kw=3)
        hw = HardwareConfig.a64fx()
        auto = layer_cycles("im2col_gemm_autovec", spec, hw).cycles
        unrolled = layer_cycles("im2col_gemm_autovec_unroll", spec, hw).cycles
        manual = layer_cycles("im2col_gemm3", spec, hw).cycles
        assert manual < unrolled < auto


class TestSpeedupLadder:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("paper1-speedups")

    def test_tiny_on_riscvv_14x(self, result):
        """Paper I: 14x for YOLOv3-tiny on RISC-VV (we accept 11-19x)."""
        s = result.data["yolov3-tiny @ RISC-VV (decoupled)"]
        assert 11.0 <= s["im2col_gemm3"] <= 19.0

    def test_autovec_band_on_a64fx(self, result):
        """Paper I: ~6.3x auto-vectorized, ~9x with unrolling."""
        s = result.data["yolov3-tiny @ A64FX (ARM-SVE)"]
        assert 4.0 <= s["im2col_gemm_autovec"] <= 9.0
        assert s["im2col_gemm_autovec_unroll"] > s["im2col_gemm_autovec"]

    def test_manual_beats_autovec_3x_to_8x(self, result):
        """Paper I's conclusion: manual optimization is worth 3x-6x over
        auto-vectorization (we allow up to 8x)."""
        for scenario in result.data.values():
            ratio = scenario["im2col_gemm3"] / scenario["im2col_gemm_autovec"]
            assert 2.5 <= ratio <= 8.5

    def test_ladder_is_monotone(self, result):
        for scenario in result.data.values():
            assert (
                scenario["im2col_gemm_autovec"]
                < scenario["im2col_gemm_autovec_unroll"]
                < scenario["im2col_gemm3"]
            )
