"""Tests for the input image pipeline (letterboxing, resize)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.image import (
    PAD_VALUE,
    letterbox,
    paper_input,
    resize_bilinear,
    synthetic_image,
)


class TestSyntheticImage:
    def test_shape_and_range(self):
        img = synthetic_image(576, 768)
        assert img.shape == (3, 576, 768)
        assert img.min() >= 0.0 and img.max() <= 1.0
        assert img.dtype == np.float32

    def test_deterministic(self):
        np.testing.assert_array_equal(synthetic_image(seed=3),
                                      synthetic_image(seed=3))
        assert not np.array_equal(synthetic_image(seed=3),
                                  synthetic_image(seed=4))


class TestResize:
    def test_identity(self, rng):
        img = rng.random((2, 6, 7)).astype(np.float32)
        out = resize_bilinear(img, 6, 7)
        np.testing.assert_array_equal(out, img)
        out[0, 0, 0] = 9  # must be a copy
        assert img[0, 0, 0] != 9

    def test_constant_image_stays_constant(self):
        img = np.full((1, 5, 5), 0.3, dtype=np.float32)
        out = resize_bilinear(img, 13, 9)
        np.testing.assert_allclose(out, 0.3, atol=1e-6)

    def test_corners_preserved(self, rng):
        img = rng.random((1, 8, 8)).astype(np.float32)
        out = resize_bilinear(img, 15, 15)
        assert out[0, 0, 0] == pytest.approx(img[0, 0, 0], abs=1e-6)
        assert out[0, -1, -1] == pytest.approx(img[0, -1, -1], abs=1e-6)

    def test_downscale_averages(self):
        img = np.zeros((1, 2, 2), dtype=np.float32)
        img[0, 0, 0] = 1.0
        out = resize_bilinear(img, 1, 1)
        assert 0.0 < out[0, 0, 0] <= 1.0

    def test_linear_ramp_exact(self):
        """Bilinear resize reproduces a linear ramp exactly."""
        ramp = np.linspace(0, 1, 9, dtype=np.float32)[None, None, :].repeat(4, 1)
        out = resize_bilinear(ramp, 4, 5)
        np.testing.assert_allclose(out[0, 0], np.linspace(0, 1, 5), atol=1e-6)

    def test_bad_inputs(self):
        with pytest.raises(ShapeError):
            resize_bilinear(np.zeros((4, 4), np.float32), 2, 2)
        with pytest.raises(ShapeError):
            resize_bilinear(np.zeros((1, 4, 4), np.float32), 0, 2)

    @given(h=st.integers(2, 20), w=st.integers(2, 20),
           oh=st.integers(1, 25), ow=st.integers(1, 25))
    @settings(max_examples=30, deadline=None)
    def test_range_preserved(self, h, w, oh, ow):
        """Bilinear interpolation never exceeds the input range."""
        rng = np.random.default_rng(h * 100 + w)
        img = rng.random((1, h, w)).astype(np.float32)
        out = resize_bilinear(img, oh, ow)
        assert out.shape == (1, oh, ow)
        assert out.min() >= img.min() - 1e-5
        assert out.max() <= img.max() + 1e-5


class TestLetterbox:
    def test_wide_image_pads_top_bottom(self):
        img = np.ones((3, 576, 768), dtype=np.float32)
        out = letterbox(img, 608)
        assert out.shape == (3, 608, 608)
        # 768 -> 608 scale: new_h = 432; bands of gray above and below
        assert out[0, 0, 0] == PAD_VALUE
        assert out[0, 304, 304] == pytest.approx(1.0, abs=1e-5)

    def test_tall_image_pads_sides(self):
        img = np.ones((1, 100, 50), dtype=np.float32)
        out = letterbox(img, 64)
        assert out[0, 32, 0] == PAD_VALUE
        assert out[0, 32, 32] == pytest.approx(1.0, abs=1e-5)

    def test_square_image_no_padding(self):
        img = np.full((1, 32, 32), 0.7, dtype=np.float32)
        out = letterbox(img, 64)
        np.testing.assert_allclose(out, 0.7, atol=1e-5)

    def test_paper_input_feeds_yolov3(self, rng):
        from repro.nn.models import yolov3_network

        x = paper_input(network_size=64, seed=1)
        assert x.shape == (3, 64, 64)
        out = yolov3_network(input_size=64).forward(x)
        assert np.isfinite(out).all()

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            letterbox(np.zeros((4, 4), np.float32), 8)
