"""End-to-end tests of the experiment harnesses (every paper artifact)."""

import numpy as np
import pytest

from repro.experiments.cli import EXPERIMENTS, main, run_experiment


class TestTable1:
    def test_matches_models(self):
        r = run_experiment("table1")
        assert len(r.data["vgg16"]) == 13
        assert len(r.data["yolov3"]) == 15
        assert "Table 1" in r.table.title


class TestBaselineFigures:
    @pytest.mark.parametrize("name,model_layers", [("fig01", 13), ("fig02", 15)])
    def test_structure(self, name, model_layers):
        r = run_experiment(name)
        assert len(r.data["winners"]) == model_layers
        for algo, col in r.data["seconds"].items():
            assert len(col) == model_layers

    def test_fig01_winner_pattern(self):
        """The paper's §4.1 pattern on VGG-16."""
        winners = run_experiment("fig01").data["winners"]
        assert winners[0] == "direct"
        assert winners[1] == "winograd"
        assert all(w == "im2col_gemm6" for w in winners[4:])

    def test_fig02_winograd_gaps(self):
        """Winograd columns are n/a exactly on non-3x3/s1 YOLO layers."""
        seconds = run_experiment("fig02").data["seconds"]["winograd"]
        applicable = [0, 3, 6, 8, 11, 13]  # layers 1,4,7,9,12,14
        for i, v in enumerate(seconds):
            assert (v is not None) == (i in applicable)


class TestSweepFigures:
    def test_fig03_scalability_bands(self):
        scal = run_experiment("fig03").data["scalability"]
        direct = [s for s in scal["direct"] if s]
        assert max(direct) > 4.0  # Direct shows the max scalability
        wg = [s for s in scal["winograd"] if s]
        assert max(wg) < max(direct)

    def test_fig04_structure(self):
        r = run_experiment("fig04")
        assert len(r.data["scalability"]["direct"]) == 15

    @pytest.mark.parametrize("name", ["fig05", "fig06", "fig07", "fig08"])
    def test_cache_sweeps_benefit_bounds(self, name):
        benefit = run_experiment(name).data["benefit"]
        for algo, col in benefit.items():
            vals = [v for v in col if v is not None]
            assert all(0.95 <= v <= 6.0 for v in vals)  # caches never hurt

    def test_fig06_direct_gains_more_than_fig05(self):
        """Direct's cache benefit grows with the vector length (VGG deep)."""
        b512 = run_experiment("fig05").data["benefit"]["direct"]
        b4096 = run_experiment("fig06").data["benefit"]["direct"]
        assert max(b4096) > max(b512)


class TestSelectionFigures:
    @pytest.fixture(scope="class")
    def fig09(self, trained_selector):
        from repro.experiments.fig09_vgg_selection import run

        return run(selector=trained_selector)

    @pytest.fixture(scope="class")
    def fig10(self, trained_selector):
        from repro.experiments.fig10_yolo_selection import run

        return run(selector=trained_selector)

    def test_sixteen_configs(self, fig09):
        assert len(fig09.data["configs"]) == 16

    def test_optimal_beats_singles(self, fig09):
        s = fig09.data["seconds"]
        for policy in ("direct", "im2col_gemm3", "im2col_gemm6", "winograd"):
            assert all(
                o <= v + 1e-12 for o, v in zip(s["optimal"], s[policy])
            )

    def test_headline_ratios_vgg(self, fig09):
        ratios = fig09.data["max_speedup_vs_single"]
        assert 1.5 <= ratios["direct"] <= 2.6  # paper: up to 1.85x
        assert 1.4 <= ratios["im2col_gemm6"] <= 2.2  # paper: up to 1.73x

    def test_headline_ratios_yolo(self, fig10):
        ratios = fig10.data["max_speedup_vs_single"]
        assert 1.2 <= ratios["direct"] <= 2.0  # paper: up to 1.33x
        assert 1.6 <= ratios["im2col_gemm6"] <= 2.6  # paper: up to 2.11x

    def test_predicted_error_bounded(self, fig09, fig10):
        """Paper: predicted-optimal is within 10% of optimal everywhere."""
        assert fig09.data["max_predicted_error"] <= 0.10
        assert fig10.data["max_predicted_error"] <= 0.10


class TestParetoFigures:
    @pytest.fixture(scope="class")
    def fig11(self):
        return run_experiment("fig11")

    def test_design_space_size(self, fig11):
        # 4 VL x 4 L2 x 5 policies
        assert len(fig11.data["points"]) == 80

    def test_frontier_all_optimal_policy(self, fig11):
        """Paper: all Pareto-frontier points use per-layer selection."""
        for p in fig11.data["frontier"]:
            assert p.payload["policy"] == "optimal"

    def test_knee_is_2048b_1mb(self, fig11):
        """Paper: the Pareto-optimal configuration is 2048 bits x 1 MB."""
        knee = fig11.data["knee"].payload
        assert knee["vlen"] == 2048
        assert knee["l2_mib"] == 1.0
        assert knee["policy"] == "optimal"

    def test_fig12_frontier_maximizes_colocation(self):
        r = run_experiment("fig12")
        frontier = r.data["frontier"]
        # the paper: frontier points co-locate as many instances as possible
        # with the smallest per-model L2 slice (1-4 MB)
        big = [p for p in frontier if p.payload.scenario.cores >= 16]
        assert big, "frontier should include many-core points"
        for p in frontier:
            assert p.payload.scenario.l2_per_instance_mib <= 4.0

    def test_fig12_throughput_scales_linearly_with_area(self):
        r = run_experiment("fig12")
        frontier = r.data["frontier"]
        xs = np.array([p.cost for p in frontier])
        ys = np.array([p.value for p in frontier])
        corr = np.corrcoef(np.log(xs), np.log(ys))[0, 1]
        assert corr > 0.9  # near-linear scaling on the frontier


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figXX"]) == 2

    def test_run_one(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "completed" in out

    def test_csv_mode(self, capsys):
        assert main(["table1", "--csv"]) == 0
        assert "model,layer" in capsys.readouterr().out

    def test_registry_complete(self):
        paper2 = [
            n for n in EXPERIMENTS
            if not n.startswith(
                ("paper1", "ablation", "serving", "extension", "layer",
                 "verdict", "profile", "trace")
            )
        ]
        # table1 + figs 1-12 + selection studies + schedule-search
        assert len(paper2) == 16
        assert len(EXPERIMENTS) >= 24  # + Paper I, ablations, serving
