"""Calibration anchors: the paper's reported shapes must hold (DESIGN.md §6).

These tests lock the qualitative reproduction: per-layer winners at the
baseline configuration, vector-length scaling bands, cache-size scaling
bands, and the algorithm-selection headline ratios.  Absolute cycle counts
are NOT asserted — the substrate is an analytical model, not gem5 — but who
wins, by roughly what factor, and where crossovers fall must match Paper II.
"""

import numpy as np
import pytest

from repro.algorithms.registry import (
    ALGORITHM_NAMES,
    best_algorithm,
    get_algorithm,
    layer_cycles,
)
from repro.nn.models import vgg16_conv_specs, yolov3_conv_specs
from repro.simulator.hwconfig import HardwareConfig

BASE = HardwareConfig.paper2_rvv(512, 1.0)


@pytest.fixture(scope="module")
def vgg():
    return vgg16_conv_specs()


@pytest.fixture(scope="module")
def yolo():
    return yolov3_conv_specs()


def winner(spec, hw=BASE):
    return best_algorithm(spec, hw)[0]


def scaling(name, spec, base_hw, fast_hw):
    a = layer_cycles(name, spec, base_hw, fallback=False).cycles
    b = layer_cycles(name, spec, fast_hw, fallback=False).cycles
    return a / b


class TestBaselineWinnersVGG:
    """Paper II §4.1 on VGG-16 at 512 b / 1 MB."""

    def test_layer1_direct_wins(self, vgg):
        assert winner(vgg[0]) == "direct"

    def test_layer1_winograd_is_worst(self, vgg):
        """IC=3 < 4 channels: the inter-tile scheme degrades (paper §4.1)."""
        _, cycles = best_algorithm(vgg[0], BASE)
        assert max(cycles, key=cycles.get) == "winograd"

    @pytest.mark.parametrize("idx", [2, 3, 4])
    def test_early_3x3_layers_winograd(self, vgg, idx):
        assert winner(vgg[idx - 1]) == "winograd"

    @pytest.mark.parametrize("idx", range(5, 14))
    def test_deep_skinny_layers_gemm6(self, vgg, idx):
        """Layers #5-#13: skinny matrices, high channels -> 6-loop GEMM."""
        assert winner(vgg[idx - 1]) == "im2col_gemm6"


class TestBaselineWinnersYOLO:
    """Paper II §4.1 on YOLOv3 at 512 b / 1 MB."""

    @pytest.mark.parametrize("idx", [1, 2])
    def test_high_resolution_layers_direct(self, yolo, idx):
        assert winner(yolo[idx - 1]) == "direct"

    @pytest.mark.parametrize("idx", [4, 7, 9])
    def test_winograd_high_performance_on_applicable(self, yolo, idx):
        """Winograd best-or-within-10% on its 3x3/s1 layers."""
        best, cycles = best_algorithm(yolo[idx - 1], BASE)
        assert cycles["winograd"] <= 1.10 * cycles[best]

    @pytest.mark.parametrize("idx", [10, 12, 14])
    def test_skinny_3x3_layers_gemm6_over_gemm3(self, yolo, idx):
        """The 6-loop transformation proves beneficial to skinny matrices."""
        _, cycles = best_algorithm(yolo[idx - 1], BASE)
        assert cycles["im2col_gemm6"] < cycles["im2col_gemm3"]

    @pytest.mark.parametrize("idx", range(5, 16))
    def test_mid_layers_im2col_gemm_family_wins(self, yolo, idx):
        """Paper: for #5-#15 the im2col+GEMM implementations prevail
        (Winograd comparable where applicable)."""
        w = winner(yolo[idx - 1])
        assert w in ("im2col_gemm3", "im2col_gemm6", "winograd")


class TestVectorLengthScaling:
    """Paper II §4.2.1: scaling 512 -> 4096 bits at 1 MB L2."""

    def test_direct_scales_most_vgg(self, vgg):
        fast = HardwareConfig.paper2_rvv(4096, 1.0)
        ratios = [scaling("direct", s, BASE, fast) for s in vgg]
        assert 1.7 <= min(ratios)
        assert max(ratios) >= 4.5
        # Direct out-scales every other algorithm on high-channel layers
        for s in vgg[4:10]:
            for other in ("im2col_gemm3", "im2col_gemm6", "winograd"):
                assert scaling("direct", s, BASE, fast) > scaling(
                    other, s, BASE, fast
                )

    def test_direct_scaling_band_yolo(self, yolo):
        fast = HardwareConfig.paper2_rvv(4096, 1.0)
        ratios = [scaling("direct", s, BASE, fast) for s in yolo]
        assert min(ratios) >= 1.3 and max(ratios) <= 8.0

    def test_gemm6_scales_less_than_gemm3_on_large_n(self, vgg):
        """Packing overheads bound the 6-loop variant's VL benefit."""
        fast = HardwareConfig.paper2_rvv(4096, 1.0)
        big_n = vgg[1:5]  # high-resolution layers
        for s in big_n:
            assert scaling("im2col_gemm6", s, BASE, fast) <= scaling(
                "im2col_gemm3", s, BASE, fast
            )

    def test_winograd_saturates_beyond_2048(self, vgg, yolo):
        """No noticeable Winograd gain from 2048 to 4096 bits."""
        mid = HardwareConfig.paper2_rvv(2048, 1.0)
        fast = HardwareConfig.paper2_rvv(4096, 1.0)
        wg = get_algorithm("winograd")
        for s in vgg + yolo:
            if not wg.applicable(s):
                continue
            assert scaling("winograd", s, mid, fast) == pytest.approx(1.0, abs=0.05)

    def test_all_algorithms_benefit_from_2048(self, vgg):
        """Thesis ch.3: all algorithms gain ~2x at 2048 vs 512 bits."""
        mid = HardwareConfig.paper2_rvv(2048, 1.0)
        for name in ALGORITHM_NAMES:
            algo = get_algorithm(name)
            ratios = [
                scaling(name, s, BASE, mid) for s in vgg if algo.applicable(s)
            ]
            assert np.mean(ratios) > 1.3


class TestCacheScaling:
    """Paper II §4.2.2: 1 MB -> 64 MB."""

    def test_gemm3_benefits_on_vgg_deep_layers(self, vgg):
        big = HardwareConfig.paper2_rvv(512, 64.0)
        ratios = [scaling("im2col_gemm3", s, BASE, big) for s in vgg[4:]]
        assert max(ratios) >= 1.7

    def test_winograd_limited_cache_scalability(self, vgg):
        """Fixed tile size: Winograd cannot exploit the largest caches."""
        big = HardwareConfig.paper2_rvv(512, 64.0)
        wg = get_algorithm("winograd")
        for s in vgg:
            if wg.applicable(s):
                assert scaling("winograd", s, BASE, big) < 1.3

    def test_direct_gains_most_from_cache_at_long_vl(self, vgg):
        """The Direct x VL x L2 interaction on deep layers (§4.2.2)."""
        s = vgg[10]  # 512ch x 14x14
        short_gain = scaling(
            "direct", s, HardwareConfig.paper2_rvv(512, 1.0),
            HardwareConfig.paper2_rvv(512, 64.0),
        )
        long_gain = scaling(
            "direct", s, HardwareConfig.paper2_rvv(4096, 1.0),
            HardwareConfig.paper2_rvv(4096, 64.0),
        )
        assert long_gain > short_gain
        assert long_gain > 1.5

    def test_all_yolo_layers_benefit_from_64mb(self, yolo):
        """Thesis abstract: all YOLOv3 layers benefit from the largest L2
        (their activations are large enough to be cache-resident only
        there).  Asserted for the best algorithm per layer."""
        for vl in (512, 4096):
            small = HardwareConfig.paper2_rvv(vl, 1.0)
            big = HardwareConfig.paper2_rvv(vl, 64.0)
            improved = 0
            for s in yolo:
                name, _ = best_algorithm(s, small)
                if scaling(name, s, small, big) > 1.02:
                    improved += 1
            assert improved >= 10  # strong majority of the 15 layers

    def test_gemm3_skinny_matrices_limited_beyond_16mb(self, yolo):
        """Both im2col+GEMM variants: limited scalability beyond 16 MB for
        extremely skinny matrices."""
        skinny = [s for s in yolo if s.gemm_n <= 5776 and s.kh == 1]
        for s in skinny:
            gain = scaling(
                "im2col_gemm3", s, HardwareConfig.paper2_rvv(512, 16.0),
                HardwareConfig.paper2_rvv(512, 64.0),
            )
            assert gain < 1.15


class TestSelectionHeadlines:
    """Paper II §4.3 / Figs. 9-10 headline ratios."""

    @pytest.fixture(scope="class")
    def grid(self):
        return [
            HardwareConfig.paper2_rvv(vl, l2)
            for vl in (512, 1024, 2048, 4096)
            for l2 in (1.0, 4.0, 16.0, 64.0)
        ]

    def _ratios(self, specs, grid, single):
        out = []
        for hw in grid:
            opt = sum(best_algorithm(s, hw)[1][best_algorithm(s, hw)[0]]
                      for s in specs)
            alg = sum(layer_cycles(single, s, hw).cycles for s in specs)
            out.append(alg / opt)
        return out

    def test_vgg_optimal_vs_direct(self, vgg, grid):
        """Paper: up to 1.85x over always-Direct (we allow 1.5-2.6)."""
        ratios = self._ratios(vgg, grid, "direct")
        assert 1.5 <= max(ratios) <= 2.6

    def test_vgg_optimal_vs_gemm6(self, vgg, grid):
        """Paper: up to 1.73x over always-GEMM-6."""
        ratios = self._ratios(vgg, grid, "im2col_gemm6")
        assert 1.4 <= max(ratios) <= 2.2

    def test_yolo_optimal_vs_direct(self, yolo, grid):
        """Paper: up to 1.33x over always-Direct (we allow 1.2-2.0)."""
        ratios = self._ratios(yolo, grid, "direct")
        assert 1.2 <= max(ratios) <= 2.0

    def test_yolo_optimal_vs_gemm6(self, yolo, grid):
        """Paper: up to 2.11x over always-GEMM-6."""
        ratios = self._ratios(yolo, grid, "im2col_gemm6")
        assert 1.6 <= max(ratios) <= 2.6

    def test_optimal_never_loses(self, vgg, yolo, grid):
        """Optimal-per-layer is at least as fast as every single policy."""
        for hw in grid[::5]:
            for specs in (vgg, yolo):
                opt = sum(
                    best_algorithm(s, hw)[1][best_algorithm(s, hw)[0]]
                    for s in specs
                )
                for name in ALGORITHM_NAMES:
                    single = sum(layer_cycles(name, s, hw).cycles for s in specs)
                    assert opt <= single * (1 + 1e-9)
