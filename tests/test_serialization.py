"""Tests for network weight serialization."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.nn import parse_cfg
from repro.nn.models import yolov3_tiny_network
from repro.nn.serialization import load_weights, save_weights

CFG = """
[net]
channels=2
height=8
width=8

[convolutional]
batch_normalize=1
filters=4
size=3
stride=1
pad=1
activation=leaky

[connected]
output=3
activation=linear
"""


class TestRoundTrip:
    def test_save_load_preserves_outputs(self, rng, tmp_path):
        net = parse_cfg(CFG, name="a")
        x = rng.standard_normal((2, 8, 8)).astype(np.float32)
        before = net.forward(x)
        path = save_weights(net, tmp_path / "w.npz")
        twin = parse_cfg(CFG, name="b")
        load_weights(twin, path)
        np.testing.assert_allclose(twin.forward(x), before, atol=1e-6)

    def test_modified_weights_survive(self, rng, tmp_path):
        net = parse_cfg(CFG)
        net._weights[0] = rng.standard_normal(
            net.weight_for(0).shape
        ).astype(np.float32)
        path = save_weights(net, tmp_path / "w.npz")
        twin = parse_cfg(CFG)
        load_weights(twin, path)
        np.testing.assert_array_equal(twin.weight_for(0), net.weight_for(0))

    def test_bn_overrides_change_forward(self, rng, tmp_path):
        net = parse_cfg(CFG)
        x = rng.standard_normal((2, 8, 8)).astype(np.float32)
        default_out = net.forward(x)
        # perturb BN parameters, save, reload into a fresh twin
        mean, var, scales, bias = net.batchnorm_params(0)
        net._bn_overrides = {0: (mean + 1.0, var, scales, bias)}
        path = save_weights(net, tmp_path / "w.npz")
        twin = parse_cfg(CFG)
        load_weights(twin, path)
        assert not np.allclose(twin.forward(x), default_out)

    def test_full_model_roundtrip(self, rng, tmp_path):
        net = yolov3_tiny_network(input_size=64)
        x = rng.standard_normal((3, 64, 64)).astype(np.float32)
        before = net.forward(x)
        path = save_weights(net, tmp_path / "tiny.npz")
        twin = yolov3_tiny_network(input_size=64)
        load_weights(twin, path)
        np.testing.assert_allclose(twin.forward(x), before, atol=1e-6)


class TestValidation:
    def test_missing_file(self):
        net = parse_cfg(CFG)
        with pytest.raises(NetworkError, match="does not exist"):
            load_weights(net, "/nonexistent/w.npz")

    def test_layer_count_mismatch(self, tmp_path):
        net = parse_cfg(CFG)
        path = save_weights(net, tmp_path / "w.npz")
        other = parse_cfg(CFG + "\n[softmax]\n")
        with pytest.raises(NetworkError, match="layers"):
            load_weights(other, path)

    def test_shape_mismatch(self, tmp_path):
        net = parse_cfg(CFG)
        path = save_weights(net, tmp_path / "w.npz")
        other = parse_cfg(CFG.replace("filters=4", "filters=8"))
        with pytest.raises(NetworkError, match="shape"):
            load_weights(other, path)

    def test_bad_archive(self, tmp_path):
        net = parse_cfg(CFG)
        bad = tmp_path / "bad.npz"
        np.savez(bad, foo=np.zeros(3))
        with pytest.raises(NetworkError, match="version"):
            load_weights(net, bad)
