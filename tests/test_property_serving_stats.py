"""Property-based conservation laws for serving accounting.

The ISSUE-level invariants: over *any* random arrival/capacity stream,
``offered == admitted + shed`` and SLO-breach counts never exceed the
number of completed requests.  Both the discrete-event simulator
(PR 5's :class:`ServingSimulator`) and the ledger the real service
shares with it (:class:`~repro.serve.middleware.ServingLedger`) must
hold them — they are what makes shed traffic auditable instead of
silently dropped.

PR 10 adds the routed variant: under *any* random replica up/down
sequence (scripted dispatch failures, drains, rejoins) the
:class:`~repro.serve.router.ReplicaRouter` partitions every admitted
request into exactly one completion class —
``admitted == direct + failover + hedge + deadline + unrouted`` — so a
failover is never double-counted and a dropped request is never lost.
"""

from __future__ import annotations

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layer import ConvSpec
from repro.serve.middleware import AdmissionController, ServingLedger
from repro.serve.protocol import ServeRequest, ServeResponse
from repro.serve.router import ReplicaHandle, ReplicaRouter
from repro.serving.simulator import ServingSimulator
from repro.simulator.hwconfig import HardwareConfig

sim_params = {
    "servers": st.integers(1, 8),
    "service_time_ms": st.floats(0.1, 50.0, allow_nan=False),
    "rate_rps": st.floats(1.0, 5000.0, allow_nan=False),
    "n_requests": st.integers(1, 400),
    "queue_limit": st.one_of(st.none(), st.integers(0, 64)),
    "slo_ms": st.one_of(st.none(), st.floats(0.1, 500.0, allow_nan=False)),
    "seed": st.integers(0, 2**31 - 1),
}


class TestSimulatorConservation:
    @given(**sim_params)
    @settings(max_examples=60, deadline=None)
    def test_offered_equals_admitted_plus_shed(
        self, servers, service_time_ms, rate_rps, n_requests,
        queue_limit, slo_ms, seed,
    ):
        sim = ServingSimulator(
            servers=servers,
            service_time_s=service_time_ms / 1e3,
            seed=seed,
            queue_limit=queue_limit,
            slo_s=slo_ms / 1e3 if slo_ms is not None else None,
        )
        stats = sim.run(rate_rps, n_requests=n_requests)

        # conservation: every offered request is admitted or shed
        assert stats.offered == n_requests
        assert stats.n_requests + stats.shed == stats.offered
        assert 0.0 <= stats.shed_rate <= 1.0
        if queue_limit is None:
            assert stats.shed == 0

        # SLO breaches are a subset of completions
        assert 0 <= stats.slo_breaches <= stats.n_requests
        if slo_ms is None:
            assert stats.slo_breaches == 0

        # causal timelines: nonnegative waits, latency >= service entry
        for rec in stats.records:
            assert rec.start >= rec.arrival
            assert rec.finish >= rec.start
            assert rec.queue_wait >= 0.0
            assert rec.latency >= rec.finish - rec.start

        # percentiles of a nonnegative sample are ordered and nonnegative
        if stats.n_requests:
            assert 0.0 <= stats.p50 <= stats.p99
            assert stats.p99 <= max(r.latency for r in stats.records)


class TestLedgerConservation:
    @given(
        outcomes=st.lists(
            st.tuples(
                st.booleans(),                             # admitted?
                st.floats(0.0, 100.0, allow_nan=False),    # arrival
                st.floats(0.0, 10.0, allow_nan=False),     # queue wait
                st.floats(0.0, 10.0, allow_nan=False),     # service time
            ),
            max_size=200,
        ),
        slo_ms=st.one_of(st.none(), st.floats(0.1, 500.0, allow_nan=False)),
        servers=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_ledger_stats_conserve_any_stream(self, outcomes, slo_ms, servers):
        ledger = ServingLedger(
            slo_s=slo_ms / 1e3 if slo_ms is not None else None
        )
        admitted = shed = 0
        for ok, arrival, wait, service in outcomes:
            if ok:
                start = arrival + wait
                ledger.record(arrival, start, start + service)
                admitted += 1
            else:
                ledger.record_shed(arrival)
                shed += 1
        stats = ledger.stats(servers=servers)
        assert stats.n_requests == admitted
        assert stats.shed == shed
        assert stats.offered == admitted + shed
        assert 0 <= stats.slo_breaches <= stats.n_requests
        assert ledger.waiting_at(float("inf")) == 0
        assert ledger.waiting_at(-1.0) == admitted

    @given(
        decisions=st.lists(st.booleans(), max_size=300),
        queue_limit=st.one_of(st.none(), st.integers(0, 16)),
    )
    @settings(max_examples=60, deadline=None)
    def test_admission_controller_counts_every_arrival(
        self, decisions, queue_limit
    ):
        """admit()/started() under any interleaving conserves arrivals."""
        ctl = AdmissionController(queue_limit=queue_limit)
        offered = 0
        for start_one in decisions:
            if start_one and ctl.depth:
                ctl.started(1)
            else:
                ctl.admit()
                offered += 1
        assert ctl.admitted + ctl.shed == offered
        if queue_limit is not None:
            assert ctl.depth <= max(queue_limit, 0)


class _FlakyReplica(ReplicaHandle):
    """A replica whose dispatches fail on a scripted boolean schedule."""

    def __init__(self, name, schedule):
        self.name = name
        self._fail = deque(schedule)

    def dispatch(self, requests):
        if self._fail and self._fail.popleft():
            raise RuntimeError("scripted outage")
        return [
            ServeResponse(
                id=r.id, status="ok", algorithm="stub",
                served_by="fallback", seconds=0.001,
            )
            for r in requests
        ]

    def probe(self):
        return True


_REQ_SPEC = ConvSpec(ic=32, oc=32, ih=28, iw=28, kh=3, kw=3, stride=1)

# an event stream entry is either a request arrival (None) or a
# (replica index, drain?) toggle — drains and rejoins interleave with
# traffic so health state churns under the router mid-flight.
router_events = st.lists(
    st.one_of(
        st.none(),
        st.tuples(st.integers(0, 3), st.booleans()),
    ),
    min_size=1,
    max_size=120,
)


class TestRoutedConservation:
    @given(
        n_replicas=st.integers(1, 4),
        fail_schedules=st.lists(
            st.lists(st.booleans(), max_size=25), min_size=4, max_size=4
        ),
        events=router_events,
        queue_limit=st.one_of(st.none(), st.integers(0, 6)),
        deadline_ms=st.one_of(
            st.none(), st.floats(0.01, 50.0, allow_nan=False)
        ),
        max_retries=st.integers(0, 3),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_admitted_partition_over_random_up_down_sequences(
        self, n_replicas, fail_schedules, events, queue_limit,
        deadline_ms, max_retries, seed,
    ):
        replicas = [
            _FlakyReplica(f"replica-{i}", fail_schedules[i])
            for i in range(n_replicas)
        ]
        router = ReplicaRouter(
            replicas,
            seed=seed,
            deadline_s=deadline_ms / 1e3 if deadline_ms is not None else None,
            max_retries=max_retries,
            retry_backoff_s=0.0005,
        )
        admission = AdmissionController(queue_limit=queue_limit)
        hw = HardwareConfig.paper2_rvv(512, 1.0)

        offered = admitted = routed = 0
        t = 0.0
        pending: list[tuple[float, ServeRequest]] = []

        def flush() -> None:
            nonlocal routed
            if not pending:
                return
            admission.started(len(pending))
            outcomes = router.route_priced(list(pending), pending[0][0])
            assert len(outcomes) == len(pending)
            for outcome in outcomes:
                assert outcome.response.status in ("ok", "deadline", "error")
                if outcome.response.status == "ok":
                    assert outcome.replica
                    assert outcome.response.attempts >= 1
                    assert outcome.finish >= outcome.start >= 0.0
            routed += len(outcomes)
            pending.clear()

        for event in events:
            t += 0.001
            if event is None:
                offered += 1
                if admission.admit(extra_depth=router.backlog(t)):
                    admitted += 1
                    pending.append(
                        (t, ServeRequest(spec=_REQ_SPEC, hw=hw, id=f"q-{t}"))
                    )
                    if len(pending) >= 4:
                        flush()
                continue
            idx, drain = event
            name = f"replica-{idx % n_replicas}"
            state = router.health[name].state
            if drain and state != "draining":
                router.drain(name)
            elif not drain and state == "draining":
                router.rejoin(name, now=t)
        flush()

        # every offered request is admitted or shed, and every admitted
        # request lands in exactly one of the router's completion classes
        assert admission.admitted + admission.shed == offered
        assert admission.admitted == admitted
        counts = router.stats.as_dict()
        assert routed == admitted
        assert (
            counts["completed_direct"]
            + counts["completed_failover"]
            + counts["completed_hedge"]
            + counts["deadline_misses"]
            + counts["unrouted"]
        ) == admitted
        assert counts["completed"] == counts["completed_direct"] + (
            counts["completed_failover"] + counts["completed_hedge"]
        )
        assert counts["failovers"] == counts["completed_failover"]
        assert counts["hedges"] >= counts["hedge_wins"]
        assert counts["ejections"] >= 0 and counts["retries"] >= 0
