"""Property-based conservation laws for serving accounting.

The ISSUE-level invariants: over *any* random arrival/capacity stream,
``offered == admitted + shed`` and SLO-breach counts never exceed the
number of completed requests.  Both the discrete-event simulator
(PR 5's :class:`ServingSimulator`) and the ledger the real service
shares with it (:class:`~repro.serve.middleware.ServingLedger`) must
hold them — they are what makes shed traffic auditable instead of
silently dropped.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.middleware import AdmissionController, ServingLedger
from repro.serving.simulator import ServingSimulator

sim_params = {
    "servers": st.integers(1, 8),
    "service_time_ms": st.floats(0.1, 50.0, allow_nan=False),
    "rate_rps": st.floats(1.0, 5000.0, allow_nan=False),
    "n_requests": st.integers(1, 400),
    "queue_limit": st.one_of(st.none(), st.integers(0, 64)),
    "slo_ms": st.one_of(st.none(), st.floats(0.1, 500.0, allow_nan=False)),
    "seed": st.integers(0, 2**31 - 1),
}


class TestSimulatorConservation:
    @given(**sim_params)
    @settings(max_examples=60, deadline=None)
    def test_offered_equals_admitted_plus_shed(
        self, servers, service_time_ms, rate_rps, n_requests,
        queue_limit, slo_ms, seed,
    ):
        sim = ServingSimulator(
            servers=servers,
            service_time_s=service_time_ms / 1e3,
            seed=seed,
            queue_limit=queue_limit,
            slo_s=slo_ms / 1e3 if slo_ms is not None else None,
        )
        stats = sim.run(rate_rps, n_requests=n_requests)

        # conservation: every offered request is admitted or shed
        assert stats.offered == n_requests
        assert stats.n_requests + stats.shed == stats.offered
        assert 0.0 <= stats.shed_rate <= 1.0
        if queue_limit is None:
            assert stats.shed == 0

        # SLO breaches are a subset of completions
        assert 0 <= stats.slo_breaches <= stats.n_requests
        if slo_ms is None:
            assert stats.slo_breaches == 0

        # causal timelines: nonnegative waits, latency >= service entry
        for rec in stats.records:
            assert rec.start >= rec.arrival
            assert rec.finish >= rec.start
            assert rec.queue_wait >= 0.0
            assert rec.latency >= rec.finish - rec.start

        # percentiles of a nonnegative sample are ordered and nonnegative
        if stats.n_requests:
            assert 0.0 <= stats.p50 <= stats.p99
            assert stats.p99 <= max(r.latency for r in stats.records)


class TestLedgerConservation:
    @given(
        outcomes=st.lists(
            st.tuples(
                st.booleans(),                             # admitted?
                st.floats(0.0, 100.0, allow_nan=False),    # arrival
                st.floats(0.0, 10.0, allow_nan=False),     # queue wait
                st.floats(0.0, 10.0, allow_nan=False),     # service time
            ),
            max_size=200,
        ),
        slo_ms=st.one_of(st.none(), st.floats(0.1, 500.0, allow_nan=False)),
        servers=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_ledger_stats_conserve_any_stream(self, outcomes, slo_ms, servers):
        ledger = ServingLedger(
            slo_s=slo_ms / 1e3 if slo_ms is not None else None
        )
        admitted = shed = 0
        for ok, arrival, wait, service in outcomes:
            if ok:
                start = arrival + wait
                ledger.record(arrival, start, start + service)
                admitted += 1
            else:
                ledger.record_shed(arrival)
                shed += 1
        stats = ledger.stats(servers=servers)
        assert stats.n_requests == admitted
        assert stats.shed == shed
        assert stats.offered == admitted + shed
        assert 0 <= stats.slo_breaches <= stats.n_requests
        assert ledger.waiting_at(float("inf")) == 0
        assert ledger.waiting_at(-1.0) == admitted

    @given(
        decisions=st.lists(st.booleans(), max_size=300),
        queue_limit=st.one_of(st.none(), st.integers(0, 16)),
    )
    @settings(max_examples=60, deadline=None)
    def test_admission_controller_counts_every_arrival(
        self, decisions, queue_limit
    ):
        """admit()/started() under any interleaving conserves arrivals."""
        ctl = AdmissionController(queue_limit=queue_limit)
        offered = 0
        for start_one in decisions:
            if start_one and ctl.depth:
                ctl.started(1)
            else:
                ctl.admit()
                offered += 1
        assert ctl.admitted + ctl.shed == offered
        if queue_limit is not None:
            assert ctl.depth <= max(queue_limit, 0)
