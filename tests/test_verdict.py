"""Tests for the reproduction-verdict report."""

import pytest

from repro.experiments.cli import run_experiment
from repro.experiments.verdict import build_checks


class TestVerdict:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("verdict")

    def test_all_checks_pass(self, result):
        failed = [c for c, ok in result.data["results"].items() if not ok]
        assert not failed, f"failed anchors: {failed}"
        assert result.data["passed"] == result.data["total"]

    def test_covers_both_papers(self, result):
        claims = " ".join(result.data["results"])
        assert "Paper I" in claims
        assert "Pareto" in claims and "RF" in claims

    def test_table_has_verdict_marks(self, result):
        text = result.table.render()
        assert "✓" in text

    def test_checks_are_well_formed(self):
        for check in build_checks():
            assert check.claim and check.paper
            text, ok = check.evaluate()
            assert isinstance(ok, bool)
            assert isinstance(text, str) and text
