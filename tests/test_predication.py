"""Tests for SVE-style predication (per-lane masking + whilelt loops)."""

import numpy as np
import pytest

from repro.errors import IsaError, RegisterError
from repro.isa import VectorMachine
from repro.isa.predication import NUM_PREDICATES, PredicatedMachine


def make(vlen=512):
    return PredicatedMachine(VectorMachine(vlen, trace=False))


class TestPredicates:
    def test_ptrue_pfalse(self):
        p = make()
        p.ptrue(0)
        assert p.active_lanes(0) == p.vlmax
        p.pfalse(0)
        assert p.active_lanes(0) == 0

    def test_whilelt_full(self):
        p = make()
        assert p.whilelt(1, 0, 100)
        assert p.active_lanes(1) == p.vlmax

    def test_whilelt_tail(self):
        p = make(512)  # 16 lanes
        assert p.whilelt(1, 96, 101)  # 5 remaining
        assert p.active_lanes(1) == 5
        assert p.mask(1)[:5].all() and not p.mask(1)[5:].any()

    def test_whilelt_done(self):
        p = make()
        assert not p.whilelt(1, 100, 100)
        assert p.active_lanes(1) == 0

    def test_predicate_register_bounds(self):
        p = make()
        with pytest.raises(RegisterError):
            p.ptrue(NUM_PREDICATES)
        with pytest.raises(RegisterError):
            p.whilelt(-1, 0, 10)


class TestMaskedOps:
    def test_ld1_zeroes_inactive(self):
        p = make(512)
        buf = p.m.alloc_from("x", np.arange(16, dtype=np.float32))
        p.whilelt(0, 0, 5)
        p.ld1(1, 0, buf, 0)
        vals = p.m.reg_values(1, vl=16)
        np.testing.assert_array_equal(vals[:5], np.arange(5))
        assert (vals[5:] == 0).all()

    def test_st1_leaves_memory_untouched(self):
        p = make(512)
        buf = p.m.alloc_from("y", np.full(16, 9.0, dtype=np.float32))
        p.dup(2, 1.0)
        p.whilelt(0, 0, 3)
        p.st1(2, 0, buf, 0)
        np.testing.assert_array_equal(buf.array[:3], [1, 1, 1])
        np.testing.assert_array_equal(buf.array[3:], np.full(13, 9.0))

    def test_non_leading_predicate_rejected_for_memory(self):
        p = make(512)
        buf = p.m.alloc("x", 16)
        p._preds[0, 3] = True  # a scattered predicate
        with pytest.raises(IsaError, match="leading-lane"):
            p.ld1(0, 0, buf, 0)

    def test_fmla_merging(self):
        p = make(512)
        p.dup(1, 10.0)  # acc
        p.dup(2, 2.0)  # operand
        p.whilelt(0, 0, 4)
        p.fmla(1, 0, 3.0, 2)  # active: 10 + 3*2 = 16; inactive stay 10
        vals = p.m.reg_values(1, vl=16)
        assert (vals[:4] == 16.0).all()
        assert (vals[4:] == 10.0).all()

    def test_fmla_zeroing(self):
        p = make(512)
        p.dup(1, 10.0)
        p.dup(2, 2.0)
        p.whilelt(0, 0, 4)
        p.fmla(1, 0, 3.0, 2, zeroing=True)
        vals = p.m.reg_values(1, vl=16)
        assert (vals[:4] == 16.0).all() and (vals[4:] == 0.0).all()

    def test_fadd_predicated(self):
        p = make(256)
        p.dup(1, 1.0)
        p.dup(2, 2.0)
        p.whilelt(0, 0, 3)
        p.dup(3, -1.0)
        p.fadd(3, 0, 1, 2)
        vals = p.m.reg_values(3, vl=8)
        assert (vals[:3] == 3.0).all() and (vals[3:] == -1.0).all()


class TestSveStyleKernels:
    """The same SAXPY written SVE-style (whilelt) and RVV-style (vsetvl)
    must agree — the papers' VLA portability argument."""

    @pytest.mark.parametrize("n", [7, 16, 100, 1000])
    @pytest.mark.parametrize("vlen", [256, 512, 2048])
    def test_saxpy_equivalence(self, n, vlen):
        # SVE style: full-width loop with whilelt tail predication
        p = make(vlen)
        x = p.m.alloc_from("x", np.arange(n, dtype=np.float32))
        y = p.m.alloc_from("y", np.ones(n, dtype=np.float32))
        i = 0
        while p.whilelt(0, i, n):
            p.ld1(1, 0, y, i)
            p.ld1(2, 0, x, i)
            p.fmla(1, 0, 2.0, 2)
            p.st1(1, 0, y, i)
            i += p.vlmax
        sve_result = y.array.copy()

        # RVV style: vsetvl strip-mining
        m = VectorMachine(vlen, trace=False)
        x2 = m.alloc_from("x", np.arange(n, dtype=np.float32))
        y2 = m.alloc_from("y", np.ones(n, dtype=np.float32))
        i = 0
        while i < n:
            gvl = m.vsetvl(n - i)
            m.vload(0, y2, i)
            m.vload(1, x2, i)
            m.vfmacc_vf(0, 2.0, 1)
            m.vstore(0, y2, i)
            i += gvl
        np.testing.assert_array_equal(sve_result, y2.array)
        np.testing.assert_allclose(sve_result, 1.0 + 2.0 * np.arange(n))
