"""Tests for model definitions: exact Table 1 dimensions, topology, inference."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.layer import ConvSpec
from repro.nn.models import (
    vgg16_conv_specs,
    vgg16_network,
    yolov3_backbone_convs,
    yolov3_conv_specs,
    yolov3_first20_layers,
    yolov3_network,
    yolov3_tiny_conv_specs,
    yolov3_tiny_network,
)

#: Paper Table 1 (VGG-16): (index, IC, OC, IH/IW, OH/OW, K, stride)
VGG_TABLE1 = [
    (1, 3, 64, 224, 224, 3, 1),
    (2, 64, 64, 224, 224, 3, 1),
    (3, 64, 128, 112, 112, 3, 1),
    (4, 128, 128, 112, 112, 3, 1),
    (5, 128, 256, 56, 56, 3, 1),
    (6, 256, 256, 56, 56, 3, 1),
    (7, 256, 256, 56, 56, 3, 1),
    (8, 256, 512, 28, 28, 3, 1),
    (9, 512, 512, 28, 28, 3, 1),
    (10, 512, 512, 28, 28, 3, 1),
    (11, 512, 512, 14, 14, 3, 1),
    (12, 512, 512, 14, 14, 3, 1),
    (13, 512, 512, 14, 14, 3, 1),
]

#: Paper Table 1 (YOLOv3 first 15 conv layers).  Layer 4's IC is printed as
#: 64 in the paper but must be 32 for channel consistency with layer 3's
#: 32-channel output (see repro.nn.models.yolov3).
YOLO_TABLE1 = [
    (1, 3, 32, 608, 608, 3, 1),
    (2, 32, 64, 608, 304, 3, 2),
    (3, 64, 32, 304, 304, 1, 1),
    (4, 32, 64, 304, 304, 3, 1),
    (5, 64, 128, 304, 152, 3, 2),
    (6, 128, 64, 152, 152, 1, 1),
    (7, 64, 128, 152, 152, 3, 1),
    (8, 128, 64, 152, 152, 1, 1),
    (9, 64, 128, 152, 152, 3, 1),
    (10, 128, 256, 152, 76, 3, 2),
    (11, 256, 128, 76, 76, 1, 1),
    (12, 128, 256, 76, 76, 3, 1),
    (13, 256, 128, 76, 76, 1, 1),
    (14, 128, 256, 76, 76, 3, 1),
    (15, 256, 128, 76, 76, 1, 1),
]


class TestVGG16:
    def test_thirteen_conv_layers(self):
        assert len(vgg16_conv_specs()) == 13

    @pytest.mark.parametrize("row", VGG_TABLE1, ids=lambda r: f"L{r[0]}")
    def test_table1_dimensions(self, row):
        idx, ic, oc, ih, oh, k, s = row
        spec = vgg16_conv_specs()[idx - 1]
        assert (spec.index, spec.ic, spec.oc) == (idx, ic, oc)
        assert (spec.ih, spec.iw) == (ih, ih)
        assert (spec.oh, spec.ow) == (oh, oh)
        assert (spec.kh, spec.stride) == (k, s)

    def test_network_structure(self):
        net = vgg16_network()
        convs = net.conv_specs()
        assert len(convs) == 13
        # 13 convs + 5 pools + 3 FC + softmax = 22 layers
        assert len(net.layers) == 22

    def test_scaled_input_inference(self, rng):
        net = vgg16_network(input_size=32)
        out = net.forward(rng.standard_normal((3, 32, 32)).astype(np.float32))
        assert out.shape == (1000,)
        assert out.sum() == pytest.approx(1.0, abs=1e-4)

    def test_input_size_must_be_multiple_of_32(self):
        with pytest.raises(ConfigError):
            vgg16_network(input_size=100)
        with pytest.raises(ConfigError):
            vgg16_conv_specs(input_size=100)


class TestYOLOv3:
    def test_fifteen_evaluated_layers(self):
        assert len(yolov3_conv_specs()) == 15

    @pytest.mark.parametrize("row", YOLO_TABLE1, ids=lambda r: f"L{r[0]}")
    def test_table1_dimensions(self, row):
        idx, ic, oc, ih, oh, k, s = row
        spec = yolov3_conv_specs()[idx - 1]
        assert (spec.index, spec.ic, spec.oc) == (idx, ic, oc)
        assert (spec.ih, spec.oh) == (ih, oh)
        assert (spec.kh, spec.stride) == (k, s)

    def test_backbone_has_75_convs(self):
        """The paper: 107 layers, 75 convolutional."""
        assert len(yolov3_backbone_convs()) == 75

    def test_network_has_107_layers(self):
        assert len(yolov3_network().layers) == 107

    def test_first20_contains_15_convs(self):
        layers = yolov3_first20_layers()
        assert len(layers) == 20
        assert sum(1 for l in layers if isinstance(l, ConvSpec)) == 15

    def test_channel_consistency(self):
        """Consecutive conv layers must agree on channels through the graph."""
        specs = yolov3_conv_specs(count=15)
        for prev, cur in zip(specs[2:], specs[3:5]):
            pass  # graph consistency is enforced by the builder below
        # the builder would raise if shortcut shapes mismatched; also check
        # that layer 4 consumes layer 3's 32 channels (the Table 1 erratum)
        assert specs[2].oc == 32 and specs[3].ic == 32

    def test_head_output_channels(self):
        convs = yolov3_backbone_convs()
        heads = [c for c in convs if c.oc == 255]
        assert len(heads) == 3  # three detection scales

    def test_small_input_inference(self, rng):
        net = yolov3_network(input_size=64)
        outs = net.forward(
            rng.standard_normal((3, 64, 64)).astype(np.float32), keep_outputs=True
        )
        assert len(outs) == 107
        # three yolo passthroughs at strides 32/16/8 of a 64px input
        shapes = {o.shape for o in outs if o.shape[0] == 255}
        assert shapes == {(255, 2, 2), (255, 4, 4), (255, 8, 8)}

    def test_count_bounds(self):
        with pytest.raises(ConfigError):
            yolov3_conv_specs(count=76)

    def test_input_multiple_of_32(self):
        with pytest.raises(ConfigError):
            yolov3_network(input_size=100)


class TestYOLOv3Tiny:
    def test_thirteen_convs(self):
        assert len(yolov3_tiny_conv_specs()) == 13

    def test_network_runs(self, rng):
        net = yolov3_tiny_network(input_size=96)
        out = net.forward(rng.standard_normal((3, 96, 96)).astype(np.float32))
        assert out.shape[0] == 255

    def test_total_layer_count(self):
        # 13 convs + 6 pools + 2 routes->yolo + route + upsample + route = 24
        assert len(yolov3_tiny_network().layers) == 24
