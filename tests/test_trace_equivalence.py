"""Batched fast paths vs per-op references: trace equivalence.

The batched kernels (``run_vectorized``, ``gemm*_vectorized``,
``im2col_vectorized``) must be *observationally identical* to their per-op
references: bit-identical outputs, identical per-category instruction
counts (the full :class:`TraceStats`), and the same ordered memory-op
address stream — the three things the cache/timing simulators and the
experiment harnesses consume.  Event granularity (how many ``ScalarOp``
rows a given count is split across) is explicitly *not* part of the
contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import gemm_kernels as gk
from repro.algorithms.direct import DirectConv
from repro.algorithms.im2col import (
    col2im_output,
    im2col_vectorized,
    im2col_vectorized_perop,
)
from repro.algorithms.im2col_gemm import Im2colGemm3, Im2colGemm6
from repro.algorithms.winograd import WinogradConv
from repro.isa.machine import VectorMachine
from repro.isa.types import E32
from repro.nn.layer import ConvSpec

VLENS = [128, 256, 512]

SPEC = ConvSpec(ic=5, oc=7, ih=13, iw=11, kh=3, kw=3, stride=1, pad=1)
SPEC_S2 = ConvSpec(ic=4, oc=6, ih=9, iw=11, kh=3, kw=3, stride=2, pad=1)
SPEC_1X1 = ConvSpec(ic=6, oc=9, ih=7, iw=8, kh=1, kw=1, stride=1, pad=0)


def _tensors(spec: ConvSpec, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
    w = (
        0.3 * rng.standard_normal((spec.oc, spec.ic, spec.kh, spec.kw))
    ).astype(np.float32)
    return x, w


def _memory_stream(machine: VectorMachine):
    return [
        (e.name, e.base, e.vl, e.stride, e.is_store, e.indices)
        for e in machine.trace
        if hasattr(e, "is_store")
    ]


def _assert_equivalent(vlen: int, run_perop, run_fast):
    """Run both paths on fresh machines and diff everything observable."""
    m_ref = VectorMachine(vlen)
    y_ref = run_perop(m_ref)
    m_fast = VectorMachine(vlen)
    y_fast = run_fast(m_fast)
    # bit-identical outputs
    assert y_ref.dtype == y_fast.dtype
    assert np.array_equal(y_ref, y_fast)
    # identical per-category instruction counts (full TraceStats equality)
    assert m_ref.trace.stats == m_fast.trace.stats
    # identical ordered memory-op address stream
    assert _memory_stream(m_ref) == _memory_stream(m_fast)
    # counts mode: same outputs and statistics, no stored events
    m_counts = VectorMachine(vlen, trace="counts")
    y_counts = run_fast(m_counts)
    assert np.array_equal(y_ref, y_counts)
    assert m_counts.trace.stats == m_ref.trace.stats
    assert len(m_counts.trace) == 0


# --------------------------------------------------------------------- #
# convolution kernels
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("vlen", VLENS)
@pytest.mark.parametrize("spec", [SPEC, SPEC_S2], ids=["s1", "s2"])
def test_direct_batched_matches_perop(vlen, spec):
    alg = DirectConv()
    x, w = _tensors(spec)
    _assert_equivalent(
        vlen,
        lambda m: alg.run_vectorized_perop(spec, x, w, m),
        lambda m: alg.run_vectorized(spec, x, w, m),
    )


@pytest.mark.parametrize("vlen", VLENS)
@pytest.mark.parametrize(
    "spec", [SPEC, ConvSpec(ic=3, oc=5, ih=7, iw=9, kh=3, kw=3, stride=1, pad=1)],
    ids=["intertile", "scalar_fallback"],
)
def test_winograd_batched_matches_perop(vlen, spec):
    alg = WinogradConv()
    x, w = _tensors(spec)
    _assert_equivalent(
        vlen,
        lambda m: alg.run_vectorized_perop(spec, x, w, m),
        lambda m: alg.run_vectorized(spec, x, w, m),
    )


@pytest.mark.parametrize("vlen", [128, 512])
def test_winograd_strided_batched_matches_perop(vlen):
    alg = WinogradConv(allow_strided=True)
    spec = ConvSpec(ic=4, oc=4, ih=9, iw=10, kh=3, kw=3, stride=2, pad=1)
    x, w = _tensors(spec)
    _assert_equivalent(
        vlen,
        lambda m: alg.run_vectorized_perop(spec, x, w, m),
        lambda m: alg.run_vectorized(spec, x, w, m),
    )


@pytest.mark.parametrize("vlen", VLENS)
@pytest.mark.parametrize("spec", [SPEC, SPEC_S2], ids=["s1", "s2"])
def test_im2col_batched_matches_perop(vlen, spec):
    x, _ = _tensors(spec)
    _assert_equivalent(
        vlen,
        lambda m: im2col_vectorized_perop(spec, x, m).array.copy(),
        lambda m: im2col_vectorized(spec, x, m).array.copy(),
    )


def _im2col_gemm_perop(spec, x, w, machine, kernel_perop):
    """Per-op composition mirroring ``_Im2colGemmBase._vectorized``."""
    col_buf = im2col_vectorized_perop(spec, x, machine)
    a_buf = machine.alloc_from(
        "gemm_a", w.reshape(spec.oc, spec.gemm_k), unique=True
    )
    c_buf = machine.alloc("gemm_c", spec.gemm_m * spec.gemm_n, np.float32, unique=True)
    kernel_perop(
        machine, a_buf, col_buf, c_buf, spec.gemm_m, spec.gemm_k, spec.gemm_n
    )
    return col2im_output(spec, c_buf.array.reshape(spec.gemm_m, spec.gemm_n))


@pytest.mark.parametrize("vlen", VLENS)
@pytest.mark.parametrize("spec", [SPEC, SPEC_1X1], ids=["3x3", "1x1"])
def test_im2col_gemm3_batched_matches_perop(vlen, spec):
    alg = Im2colGemm3()
    x, w = _tensors(spec)
    _assert_equivalent(
        vlen,
        lambda m: _im2col_gemm_perop(spec, x, w, m, gk.gemm3_vectorized_perop),
        lambda m: alg.run_vectorized(spec, x, w, m),
    )


@pytest.mark.parametrize("vlen", [128, 512])
def test_im2col_gemm6_batched_matches_perop(vlen):
    alg = Im2colGemm6()
    x, w = _tensors(SPEC)
    _assert_equivalent(
        vlen,
        lambda m: _im2col_gemm_perop(SPEC, x, w, m, gk.gemm6_vectorized_perop),
        lambda m: alg.run_vectorized(SPEC, x, w, m),
    )


# --------------------------------------------------------------------- #
# GEMM kernels with a non-trivial alpha (the float64 scaling path)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("vlen", [128, 512])
@pytest.mark.parametrize("alpha", [1.0, 0.37, -2.5])
@pytest.mark.parametrize(
    "fast,perop",
    [
        (gk.gemm3_vectorized, gk.gemm3_vectorized_perop),
        (gk.gemm6_vectorized, gk.gemm6_vectorized_perop),
    ],
    ids=["gemm3", "gemm6"],
)
def test_gemm_batched_matches_perop(vlen, alpha, fast, perop):
    m, k, n = 33, 20, 70
    rng = np.random.default_rng(5)
    a = rng.standard_normal(m * k).astype(np.float32)
    b = rng.standard_normal(k * n).astype(np.float32)

    def run(kernel):
        def inner(machine):
            a_buf = machine.alloc_from("A", a)
            b_buf = machine.alloc_from("B", b)
            c_buf = machine.alloc("C", m * n)
            kernel(machine, a_buf, b_buf, c_buf, m, k, n, alpha)
            return c_buf.array.copy()

        return inner

    _assert_equivalent(vlen, run(perop), run(fast))


# --------------------------------------------------------------------- #
# batched intrinsics under LMUL register grouping
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("vlen", [128, 512])
@pytest.mark.parametrize("lmul", [1, 2, 4])
def test_seq_intrinsics_match_perop_under_lmul(vlen, lmul):
    """The ``*_seq`` intrinsics must equal their per-op unrolled runs at
    every LMUL (the kernels run at LMUL=1; the grouped path falls back to
    per-op calls internally and must stay equivalent)."""
    rng = np.random.default_rng(7)
    data = rng.standard_normal(1024).astype(np.float32)
    offsets = np.array([3, 77, 150, 400], dtype=np.int64)
    scalars = np.array([0.5, -1.25, 3.0, 0.125], dtype=np.float32)
    count, step = offsets.size, lmul

    def build():
        machine = VectorMachine(vlen)
        buf = machine.alloc_from("buf", data)
        out = machine.alloc("out", 1024)
        machine.vsetvl(37, lmul=lmul)
        return machine, buf, out

    m1, b1, o1 = build()
    for it in range(count):
        m1.vbroadcast(8 + it * step, 1.5)
    for it, off in enumerate(offsets):
        m1.vload(8 + it * step, b1, int(off))
    m1.vload(0, b1, 500)
    for it, s in enumerate(scalars):
        m1.vfmacc_vf(8 + it * step, float(s), 0)
    for it, off in enumerate(offsets):
        m1.vstore(8 + it * step, o1, int(off))

    m2, b2, o2 = build()
    m2.vbroadcast_seq(8, count, 1.5)
    m2.vload_seq(8, b2, offsets)
    m2.vload(0, b2, 500)
    m2.vfmacc_vf_seq(8, scalars, 0)
    m2.vstore_seq(8, o2, offsets)

    assert np.array_equal(o1.array, o2.array)
    assert m1.trace.stats == m2.trace.stats
    assert _memory_stream(m1) == _memory_stream(m2)
    n = m1.vl
    for it in range(count):
        assert np.array_equal(
            m1.reg_values(8 + it * step, n), m2.reg_values(8 + it * step, n)
        )


@pytest.mark.parametrize("vlen", [128, 512])
@pytest.mark.parametrize("lmul", [1, 2, 4])
@pytest.mark.parametrize("stride", [1, 3])
def test_vcopy_strips_matches_perop_under_lmul(vlen, lmul, stride):
    rng = np.random.default_rng(11)
    data = rng.standard_normal(1024).astype(np.float32)
    length = 50

    def build():
        machine = VectorMachine(vlen)
        src = machine.alloc_from("src", data)
        dst = machine.alloc("dst", 256)
        return machine, src, dst

    m1, s1, d1 = build()
    j = 0
    while j < length:
        gvl = m1.vsetvl(length - j, E32, lmul)
        if stride == 1:
            m1.vload(0, s1, 5 + j)
        else:
            m1.vload_strided(0, s1, 5 + j * stride, stride)
        m1.vstore(0, d1, 9 + j)
        j += gvl

    m2, s2, d2 = build()
    m2.vcopy_strips(s2, 5, d2, 9, length, src_stride=stride, lmul=lmul)

    assert np.array_equal(d1.array, d2.array)
    assert m1.trace.stats == m2.trace.stats
    assert _memory_stream(m1) == _memory_stream(m2)
    assert m1.vl == m2.vl
    n = m1.vl
    assert np.array_equal(m1.reg_values(0, n), m2.reg_values(0, n))


def test_direct_unique_buffer_names_no_collisions():
    """Repeated runs on one machine must never collide on buffer names
    (the old id()-truncation scheme could)."""
    alg = DirectConv()
    x, w = _tensors(SPEC)
    machine = VectorMachine(256)
    for _ in range(3):
        alg.run_vectorized(SPEC, x, w, machine)
    names = list(machine._buffers)
    assert len(names) == len(set(names))
    assert sum(1 for n in names if n.startswith("direct_y")) == 3
