"""Tests for RVV LMUL register grouping."""

import numpy as np
import pytest

from repro.errors import IsaError, RegisterError, VectorLengthError
from repro.isa import VectorMachine
from repro.isa.types import E32, VType, grant_vl


class TestGrantWithLmul:
    def test_vlmax_scales_with_lmul(self):
        assert grant_vl(10_000, E32, 512, lmul=1) == 16
        assert grant_vl(10_000, E32, 512, lmul=2) == 32
        assert grant_vl(10_000, E32, 512, lmul=8) == 128

    def test_invalid_lmul(self):
        with pytest.raises(VectorLengthError):
            grant_vl(10, E32, 512, lmul=3)
        with pytest.raises(VectorLengthError):
            VType(sew=E32, vl=4, lmul=5)


class TestGroupedExecution:
    def test_load_store_spans_groups(self):
        m = VectorMachine(512, trace=False)
        src = m.alloc_from("x", np.arange(64, dtype=np.float32))
        dst = m.alloc("y", 64)
        got = m.vsetvl(64, lmul=4)  # 4 x 16 = 64 elements in one group
        assert got == 64
        m.vload(0, src, 0)
        m.vstore(0, dst, 0)
        np.testing.assert_array_equal(dst.array, np.arange(64))

    def test_group_spills_into_consecutive_registers(self):
        m = VectorMachine(512, trace=False)
        src = m.alloc_from("x", np.arange(32, dtype=np.float32))
        m.vsetvl(32, lmul=2)
        m.vload(4, src, 0)
        # the second half lives in v5
        m.vsetvl(16, lmul=1)
        np.testing.assert_array_equal(m.reg_values(5), np.arange(16, 32))

    def test_unaligned_group_rejected(self):
        m = VectorMachine(512, trace=False)
        buf = m.alloc("x", 64)
        m.vsetvl(64, lmul=4)
        with pytest.raises(RegisterError, match="not aligned"):
            m.vload(2, buf, 0)  # v2 not a multiple of 4

    def test_group_past_file_end_rejected(self):
        m = VectorMachine(512, trace=False)
        buf = m.alloc("x", 128)
        m.vsetvl(128, lmul=8)
        with pytest.raises(RegisterError):
            m.vload(28, buf, 0)  # needs v28..v35; hmm v28%8 != 0 triggers first
        with pytest.raises(RegisterError):
            m.vload(25, buf, 0)

    def test_arithmetic_across_groups(self):
        m = VectorMachine(256, trace=False)  # 8 f32 per register
        a = m.alloc_from("a", np.arange(32, dtype=np.float32))
        b = m.alloc_from("b", np.full(32, 2.0, dtype=np.float32))
        c = m.alloc("c", 32)
        m.vsetvl(32, lmul=4)
        m.vload(0, a, 0)
        m.vload(4, b, 0)
        m.vfmacc(4, 0, 0)  # 2 + x*x
        m.vstore(4, c, 0)
        np.testing.assert_array_equal(c.array, 2.0 + np.arange(32) ** 2)

    def test_fma_vf_grouped(self):
        m = VectorMachine(256, trace=False)
        x = m.alloc_from("x", np.arange(16, dtype=np.float32))
        y = m.alloc("y", 16)
        m.vsetvl(16, lmul=2)
        m.vbroadcast(0, 1.0)
        m.vload(2, x, 0)
        m.vfmacc_vf(0, 3.0, 2)
        m.vstore(0, y, 0)
        np.testing.assert_array_equal(y.array, 1.0 + 3.0 * np.arange(16))

    def test_redsum_grouped(self):
        m = VectorMachine(256, trace=False)
        x = m.alloc_from("x", np.arange(24, dtype=np.float32))
        m.vsetvl(24, lmul=4)
        m.vload(0, x, 0)
        assert m.vredsum(0) == float(np.arange(24).sum())

    def test_vl_cannot_exceed_group(self):
        m = VectorMachine(512, trace=False)
        m.vsetvl(32, lmul=2)
        with pytest.raises(IsaError):
            m._active(100)

    def test_saxpy_lmul_emulates_longer_vectors(self):
        """The RVV trick: LMUL=8 on 512-bit hardware behaves like a 4096-bit
        machine at LMUL=1 — fewer strip-mine iterations, same result."""
        n = 1000

        def run(vlen, lmul):
            m = VectorMachine(vlen, trace=False)
            x = m.alloc_from("x", np.arange(n, dtype=np.float32))
            y = m.alloc_from("y", np.ones(n, dtype=np.float32))
            iters = 0
            i = 0
            while i < n:
                gvl = m.vsetvl(n - i, lmul=lmul)
                m.vload(0, y, i)
                m.vload(8, x, i)
                m.vfmacc_vf(0, 2.0, 8)
                m.vstore(0, y, i)
                i += gvl
                iters += 1
            return y.array.copy(), iters

    # LMUL=8 @512b  vs  LMUL=1 @4096b: same grants, same results
        a, it_a = run(512, 8)
        b, it_b = run(4096, 1)
        np.testing.assert_array_equal(a, b)
        assert it_a == it_b
        np.testing.assert_allclose(a, 1.0 + 2.0 * np.arange(n))
