"""Property tests for the evaluation engine (hypothesis).

Pins the two invariants everything else leans on:

* the content-addressed key is *injective* on distinct inputs and *stable*
  under payload dict/field reordering;
* the batch executor's output order equals the serial per-task order for
  any shuffled submission order (parallel included).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import ALGORITHM_NAMES, layer_cycles
from repro.engine import EvalTask, EvaluationEngine, cache_key
from repro.engine.keys import dataclass_payload, key_from_payload
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

conv_specs = st.builds(
    ConvSpec,
    ic=st.integers(1, 64),
    oc=st.integers(1, 64),
    ih=st.integers(8, 64),
    iw=st.integers(8, 64),
    kh=st.sampled_from([1, 3, 5]),
    kw=st.sampled_from([1, 3, 5]),
    stride=st.sampled_from([1, 2]),
    index=st.integers(0, 30),
)

hw_configs = st.builds(
    HardwareConfig.paper2_rvv,
    vlen_bits=st.sampled_from([512, 1024, 2048, 4096]),
    l2_mib=st.sampled_from([1.0, 4.0, 16.0, 64.0]),
)

algorithms = st.sampled_from(ALGORITHM_NAMES)


# ---------------------------------------------------------------------- #
# key properties
# ---------------------------------------------------------------------- #

@given(a1=algorithms, s1=conv_specs, h1=hw_configs,
       a2=algorithms, s2=conv_specs, h2=hw_configs)
def test_key_injective_on_distinct_inputs(a1, s1, h1, a2, s2, h2):
    """Equal inputs -> equal keys; distinct inputs -> distinct keys."""
    k1 = cache_key(a1, s1, h1)
    k2 = cache_key(a2, s2, h2)
    if (a1, s1, h1) == (a2, s2, h2):
        assert k1 == k2
    else:
        assert k1 != k2


@given(spec=conv_specs, hw=hw_configs, algo=algorithms, data=st.data())
def test_key_stable_under_field_reordering(spec, hw, algo, data):
    """Payload dict insertion order must never change the key."""
    payload = {
        "schema": 1,
        "algorithm": algo,
        "spec": dataclass_payload(spec),
        "hw": dataclass_payload(hw),
        "calibration": "abc",
    }

    def shuffled(d: dict) -> dict:
        keys = data.draw(st.permutations(sorted(d)))
        return {
            k: shuffled(d[k]) if isinstance(d[k], dict) else d[k] for k in keys
        }

    assert key_from_payload(payload) == key_from_payload(shuffled(payload))


@given(spec=conv_specs, hw=hw_configs)
def test_key_separates_every_hardware_axis(spec, hw):
    """Perturbing any single grid axis must change the key."""
    base = cache_key("direct", spec, hw)
    assert cache_key("direct", spec, hw.with_(l2_mib=hw.l2_mib * 2)) != base
    assert cache_key("direct", spec, hw.with_(lmul=2)) != base
    assert cache_key("direct", spec, hw.with_(dram_bw_gib_s=25.6)) != base


# ---------------------------------------------------------------------- #
# executor ordering
# ---------------------------------------------------------------------- #

_SPECS = [ConvSpec(ic=4 * (i + 1), oc=8, ih=12, iw=12, index=i) for i in range(3)]
_HW = HardwareConfig.paper2_rvv(512, 1.0)
_TASKS = [EvalTask(name, s, _HW) for s in _SPECS for name in ALGORITHM_NAMES]


def _records_equal(a, b) -> bool:
    return a.algorithm == b.algorithm and [
        p.__dict__ for p in a.phases
    ] == [p.__dict__ for p in b.phases]


@given(order=st.permutations(range(len(_TASKS))))
@settings(max_examples=20, deadline=None)
def test_serial_batch_order_matches_submission_order(order):
    """evaluate_many returns records aligned with the (shuffled) input."""
    shuffled = [_TASKS[i] for i in order]
    records = EvaluationEngine().evaluate_many(shuffled)
    for task, record in zip(shuffled, records):
        assert _records_equal(record, layer_cycles(task.algorithm, task.spec, _HW))


@given(order=st.permutations(range(len(_TASKS))))
@settings(max_examples=3, deadline=None)
def test_parallel_order_equals_serial_order(order):
    """Worker completion order never leaks into the record order."""
    shuffled = [_TASKS[i] for i in order]
    serial = EvaluationEngine(max_workers=1).evaluate_many(shuffled)
    parallel = EvaluationEngine(
        max_workers=3, pool_min_batch=0
    ).evaluate_many(shuffled)
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert _records_equal(a, b)
