"""Chaos suite: the engine must erase injected faults, bit-identically.

The acceptance bar: with seeded worker crashes, worker hangs and ~10%
disk-cache corruption all active, a full 448-point grid (28 layers x 4
configs x 4 algorithms) evaluated in parallel returns *exactly* the
records a fault-free serial run produces, and every recovery action is
visible in the observability counters.
"""

from __future__ import annotations

import json

import pytest

from repro import faults, obs
from repro.algorithms.registry import ALGORITHM_NAMES
from repro.engine import (
    CellError,
    CheckpointJournal,
    EvalTask,
    EvaluationEngine,
    MemoCache,
    grid_fingerprint,
)
from repro.errors import CampaignAbortedError, EngineError
from repro.experiments.campaign import run_campaign
from repro.experiments.configs import workload
from repro.simulator.hwconfig import HardwareConfig

pytestmark = pytest.mark.chaos  # fault-injection suite: full-suite CI job


def phases_equal(a, b) -> bool:
    """Exact (bit-identical) equality of two LayerCycles records."""
    return a.algorithm == b.algorithm and [
        p.__dict__ for p in a.phases
    ] == [p.__dict__ for p in b.phases]


@pytest.fixture(scope="module")
def grid_tasks() -> list[EvalTask]:
    """The 448-point grid: 28 layers x 4 configs x 4 algorithms."""
    specs = workload("vgg16") + workload("yolov3")
    configs = [HardwareConfig.paper2_rvv(v, 1.0) for v in (512, 1024, 2048, 4096)]
    return [
        EvalTask(name, spec, hw)
        for spec in specs for hw in configs for name in ALGORITHM_NAMES
    ]


@pytest.fixture(scope="module")
def baseline(grid_tasks):
    """Fault-free serial records (any ambient plan explicitly masked)."""
    with faults.inject(None):
        return EvaluationEngine(max_workers=1).evaluate_many(grid_tasks)


@pytest.fixture
def recorder():
    rec = obs.enable()
    yield rec
    obs.disable()


def counters(rec) -> dict[str, float]:
    return rec.snapshot()["counters"]


class TestEngineChaos:
    def test_crash_hang_corruption_bit_identical(
        self, tmp_path, grid_tasks, baseline, recorder
    ):
        """The acceptance scenario: crash + hang + 10% corruption."""
        engine = EvaluationEngine(
            cache=MemoCache(disk_dir=tmp_path),
            max_workers=2,
            chunk_timeout_s=2.0,
            retry_backoff_s=0.01,
        )
        plan = faults.parse_fault_spec(
            "seed=42,worker.crash=1,worker.hang=1,hang.seconds=5,"
            "cache.corrupt=0.1"
        )
        with faults.inject(plan):
            records = engine.evaluate_many(grid_tasks)
        assert len(records) == len(baseline) == 448
        for got, want in zip(records, baseline):
            assert phases_equal(got, want)
        c = counters(recorder)
        assert c["faults.injected.engine.worker.crash"] == 1
        assert c["faults.injected.engine.worker.hang"] == 1
        assert c.get("engine.pool_restarts", 0) >= 1
        assert c.get("engine.retries", 0) >= 1
        assert engine.cache.stats.corrupt_entries == 0  # writes, not reads

        # ~10% of the disk entries landed corrupted; a fresh engine must
        # detect them, recompute, and still match the baseline exactly.
        fresh = EvaluationEngine(cache=MemoCache(disk_dir=tmp_path))
        with faults.inject(None):
            reread = fresh.evaluate_many(grid_tasks)
        for got, want in zip(reread, baseline):
            assert phases_equal(got, want)
        assert fresh.cache.stats.corrupt_entries > 0
        assert c.get("engine.cache.corrupt_entries", 0) + counters(recorder)[
            "engine.cache.corrupt_entries"
        ] > 0

    def test_hang_timeout_salvages_finished_chunks(
        self, grid_tasks, baseline, recorder
    ):
        """A hung worker trips the chunk timeout; finished chunks survive."""
        engine = EvaluationEngine(
            max_workers=2, chunk_timeout_s=1.0, retry_backoff_s=0.01
        )
        with faults.inject("seed=1,worker.hang=1,hang.seconds=30"):
            records = engine.evaluate_many(grid_tasks)
        for got, want in zip(records, baseline):
            assert phases_equal(got, want)
        c = counters(recorder)
        assert c["engine.chunk_timeouts"] >= 1
        assert c.get("engine.chunks_salvaged", 0) >= 1

    def test_serial_path_immune_to_worker_faults(self, grid_tasks, baseline):
        """worker.crash must never ``os._exit`` the caller's own process."""
        engine = EvaluationEngine(max_workers=1)
        with faults.inject("seed=1,worker.crash=5,worker.hang=5"):
            records = engine.evaluate_many(grid_tasks[:32])
        for got, want in zip(records, baseline[:32]):
            assert phases_equal(got, want)

    def test_cache_write_errors_are_absorbed(self, tmp_path, baseline, grid_tasks):
        engine = EvaluationEngine(cache=MemoCache(disk_dir=tmp_path))
        with faults.inject("seed=3,cache.write_error=0.5"):
            records = engine.evaluate_many(grid_tasks[:64])
        for got, want in zip(records, baseline[:64]):
            assert phases_equal(got, want)
        assert engine.cache.stats.write_errors > 0

    def test_injected_cell_errors_are_isolated(self, grid_tasks, baseline, recorder):
        """~10% of cells fail; the rest are still bit-identical."""
        engine = EvaluationEngine(max_workers=2, retry_backoff_s=0.01)
        with faults.inject("seed=5,cell.error=0.1"):
            records = engine.evaluate_many(grid_tasks, on_error="record")
        errors = [r for r in records if isinstance(r, CellError)]
        assert 0 < len(errors) < len(records)
        for got, want in zip(records, baseline):
            if not isinstance(got, CellError):
                assert phases_equal(got, want)
        failing_keys = {
            engine.key(t) for t, r in zip(grid_tasks, records)
            if isinstance(r, CellError)
        }
        assert counters(recorder)["engine.cell_errors"] == len(failing_keys)
        # failed cells were never cached: a fault-free pass on the same
        # engine recomputes them and converges to the full baseline
        with faults.inject(None):
            healed = engine.evaluate_many(grid_tasks)
        for got, want in zip(healed, baseline):
            assert phases_equal(got, want)


class TestCheckpointResume:
    @pytest.fixture
    def small_grid(self):
        from repro.experiments.configs import grid

        return {"vgg16": workload("vgg16")[:4]}, list(grid())[:4]

    def test_abort_and_resume_bit_identical(self, tmp_path, small_grid, recorder):
        """Kill mid-campaign, resume, recompute only unfinished cells."""
        workloads, configs = small_grid
        journal = tmp_path / "campaign.jsonl"
        with faults.inject(None):
            base = run_campaign(
                workloads, configs, engine=EvaluationEngine(), name="t"
            )
        with faults.inject("seed=7,campaign.abort=20"):
            with pytest.raises(CampaignAbortedError, match="--resume"):
                run_campaign(
                    workloads, configs, engine=EvaluationEngine(), name="t",
                    journal=journal, checkpoint_every=8,
                )
        assert len(journal.read_text().splitlines()) == 21  # header + 20

        resumed = run_campaign(
            workloads, configs, engine=EvaluationEngine(), name="t",
            journal=journal, resume=True, checkpoint_every=8,
        )
        assert resumed.records == base.records
        # only the 44 unfinished cells were appended on resume
        assert len(journal.read_text().splitlines()) == 1 + 64
        c = counters(recorder)
        assert c["faults.injected.campaign.abort"] == 1
        assert c["engine.journal_appends"] == 64

    def test_fresh_run_discards_stale_journal(self, tmp_path, small_grid):
        workloads, configs = small_grid
        journal = tmp_path / "campaign.jsonl"
        with faults.inject("seed=7,campaign.abort=20"):
            with pytest.raises(CampaignAbortedError):
                run_campaign(
                    workloads, configs, engine=EvaluationEngine(), name="t",
                    journal=journal, checkpoint_every=8,
                )
        # no --resume: the stale journal is replaced, not merged
        fresh = run_campaign(
            workloads, configs, engine=EvaluationEngine(), name="t",
            journal=journal, checkpoint_every=64,
        )
        assert len(journal.read_text().splitlines()) == 1 + 64
        assert len(fresh.records) == 64


class TestJournalIntegrity:
    FP = "a" * 16

    def _journal_with_records(self, path, n: int = 3) -> CheckpointJournal:
        j = CheckpointJournal(path, self.FP, "t")
        for i in range(n):
            j.append({"cell": i})
        j.close()
        return j

    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._journal_with_records(path)
        assert CheckpointJournal(path, self.FP, "t").load() == [
            {"cell": 0}, {"cell": 1}, {"cell": 2}
        ]

    def test_fingerprint_mismatch_is_a_hard_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._journal_with_records(path)
        with pytest.raises(EngineError, match="different"):
            CheckpointJournal(path, "b" * 16, "t").load()

    def test_torn_trailing_line_dropped_and_truncated(self, tmp_path, recorder):
        path = tmp_path / "j.jsonl"
        self._journal_with_records(path)
        clean_size = path.stat().st_size
        with open(path, "a") as fh:
            fh.write('{"kind": "record", "da')  # crash landed mid-append
        j = CheckpointJournal(path, self.FP, "t")
        assert j.load() == [{"cell": 0}, {"cell": 1}, {"cell": 2}]
        assert path.stat().st_size == clean_size  # fragment gone on disk
        j.append({"cell": 3})  # appends continue on a clean line
        j.close()
        assert CheckpointJournal(path, self.FP, "t").load()[-1] == {"cell": 3}
        assert counters(recorder)["engine.journal_torn_lines"] == 1

    def test_mid_file_corruption_is_a_hard_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._journal_with_records(path)
        lines = path.read_text().splitlines()
        lines[1] = "not json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(EngineError, match="corrupt"):
            CheckpointJournal(path, self.FP, "t").load()

    def test_unreadable_header_is_a_hard_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("garbage\n")
        with pytest.raises(EngineError, match="header"):
            CheckpointJournal(path, self.FP, "t").load()

    def test_torn_header_recovers_by_starting_over(self, tmp_path, recorder):
        # The crash landed inside the very first append: a partial header
        # with no trailing newline.  Nothing was journaled yet, so load()
        # recovers (empty journal, file truncated) instead of demanding
        # manual deletion.
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "header", "sch')
        j = CheckpointJournal(path, self.FP, "t")
        assert j.load() == []
        assert path.stat().st_size == 0
        assert counters(recorder)["engine.journal_torn_lines"] == 1
        j.append({"cell": 0})  # a fresh header is written on next append
        j.close()
        assert CheckpointJournal(path, self.FP, "t").load() == [{"cell": 0}]

    def test_torn_header_with_records_behind_it_is_a_hard_error(self, tmp_path):
        # A garbled header *followed by data* is not the torn-first-append
        # signature: recovery would silently discard journaled records.
        path = tmp_path / "j.jsonl"
        self._journal_with_records(path)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0][: len(lines[0]) // 2] + "\n"
                        + "".join(lines[1:]))
        with pytest.raises(EngineError, match="unreadable header"):
            CheckpointJournal(path, self.FP, "t").load()

    def test_garbled_fingerprint_header_is_a_hard_error(self, tmp_path):
        # The header parses but its fingerprint bytes were damaged —
        # indistinguishable from a journal of some other grid.
        path = tmp_path / "j.jsonl"
        self._journal_with_records(path)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0].replace(self.FP, "!" * 16)
                        + "".join(lines[1:]))
        with pytest.raises(EngineError, match="different"):
            CheckpointJournal(path, self.FP, "t").load()

    def test_wrong_schema_header_is_a_hard_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = {"kind": "header", "schema": 999,
                  "name": "t", "fingerprint": self.FP}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(EngineError, match="incompatible"):
            CheckpointJournal(path, self.FP, "t").load()

    def test_grid_fingerprint_order_independent(self):
        a = [("w", 1, "direct", 512, 1.0), ("w", 2, "direct", 512, 1.0)]
        assert grid_fingerprint(a) == grid_fingerprint(list(reversed(a)))
        assert grid_fingerprint(a) != grid_fingerprint(a[:1])

    def test_journal_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._journal_with_records(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["kind"] == "header"
        assert all(r["kind"] == "record" for r in rows[1:])
