"""Tests for layer specifications (ConvSpec & friends)."""

import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn.layer import (
    AvgPoolSpec,
    ConnectedSpec,
    ConvSpec,
    MaxPoolSpec,
    UpsampleSpec,
)


class TestConvSpecDims:
    def test_same_padding_default(self):
        s = ConvSpec(ic=3, oc=8, ih=10, iw=10, kh=3, kw=3)
        assert s.pad == 1
        assert (s.oh, s.ow) == (10, 10)

    def test_stride_two(self):
        s = ConvSpec(ic=3, oc=8, ih=608, iw=608, kh=3, kw=3, stride=2)
        assert (s.oh, s.ow) == (304, 304)

    def test_one_by_one(self):
        s = ConvSpec(ic=8, oc=4, ih=9, iw=9, kh=1, kw=1)
        assert s.pad == 0
        assert (s.oh, s.ow) == (9, 9)

    def test_explicit_padding(self):
        s = ConvSpec(ic=1, oc=1, ih=8, iw=8, kh=3, kw=3, pad=0)
        assert (s.oh, s.ow) == (6, 6)

    def test_rectangular_input(self):
        s = ConvSpec(ic=1, oc=1, ih=10, iw=6, kh=3, kw=3)
        assert (s.oh, s.ow) == (10, 6)

    def test_gemm_dims(self):
        s = ConvSpec(ic=3, oc=32, ih=608, iw=608, kh=3, kw=3)
        assert s.gemm_m == 32
        assert s.gemm_k == 27
        assert s.gemm_n == 608 * 608

    def test_macs_and_flops(self):
        s = ConvSpec(ic=2, oc=3, ih=4, iw=4, kh=1, kw=1)
        assert s.macs == 3 * 2 * 16
        assert s.flops == 2 * s.macs

    def test_tensor_bytes(self):
        s = ConvSpec(ic=2, oc=3, ih=4, iw=5, kh=3, kw=3)
        assert s.input_bytes == 2 * 4 * 5 * 4
        assert s.output_bytes == 3 * s.oh * s.ow * 4
        assert s.weight_bytes == 3 * 2 * 9 * 4
        assert s.im2col_bytes == s.gemm_k * s.gemm_n * 4

    def test_arithmetic_intensity_matches_paper_table4(self):
        """Paper I Table IV, YOLOv3 L1: M=32, N=369664, K=27 -> AI 7.32."""
        s = ConvSpec(ic=3, oc=32, ih=608, iw=608, kh=3, kw=3)
        assert s.arithmetic_intensity() == pytest.approx(7.32, abs=0.01)

    def test_features_vector(self):
        s = ConvSpec(ic=3, oc=8, ih=10, iw=12, kh=3, kw=3, stride=2)
        f = s.features()
        assert len(f) == len(ConvSpec.FEATURE_NAMES) == 10
        assert f[0] == 3.0 and f[5] == 8.0 and f[3] == 2.0

    def test_validate_input(self):
        s = ConvSpec(ic=3, oc=8, ih=10, iw=10)
        s.validate_input((3, 10, 10))
        with pytest.raises(ShapeError):
            s.validate_input((3, 10, 11))

    def test_describe_mentions_dims(self):
        s = ConvSpec(ic=3, oc=8, ih=10, iw=10, index=4)
        assert "conv4" in s.describe() and "3->8" in s.describe()


class TestConvSpecValidation:
    @pytest.mark.parametrize("field", ["ic", "oc", "ih", "iw", "kh", "kw", "stride"])
    def test_positive_required(self, field):
        kwargs = dict(ic=3, oc=8, ih=10, iw=10, kh=3, kw=3, stride=1)
        kwargs[field] = 0
        with pytest.raises(ConfigError):
            ConvSpec(**kwargs)

    def test_kernel_larger_than_input(self):
        with pytest.raises(ConfigError, match="larger than padded input"):
            ConvSpec(ic=1, oc=1, ih=2, iw=2, kh=7, kw=7, pad=0)

    def test_negative_pad(self):
        with pytest.raises(ConfigError):
            ConvSpec(ic=1, oc=1, ih=8, iw=8, kh=3, kw=3, pad=-2)


class TestOtherSpecs:
    def test_maxpool_dims(self):
        p = MaxPoolSpec(c=4, ih=10, iw=10, size=2, stride=2)
        assert (p.oh, p.ow) == (5, 5)

    def test_maxpool_same_padded(self):
        p = MaxPoolSpec(c=4, ih=13, iw=13, size=2, stride=1, pad=1)
        assert (p.oh, p.ow) == (13, 13)

    def test_avgpool(self):
        assert AvgPoolSpec(c=4, ih=3, iw=3).c == 4

    def test_connected_macs(self):
        assert ConnectedSpec(inputs=10, outputs=5).macs == 50

    def test_upsample(self):
        u = UpsampleSpec(c=2, ih=3, iw=3, stride=2)
        assert u.stride == 2
