"""Tests for cross-validation, the 448-point dataset, and the selector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import ALGORITHM_NAMES
from repro.errors import NotFittedError, SelectionError
from repro.selection import (
    AlgorithmSelector,
    accuracy_score,
    confusion_matrix,
    cross_val_scores,
    kfold_indices,
)
from repro.selection.dataset import FEATURE_NAMES, paper_grid, paper_layers
from repro.simulator.hwconfig import HardwareConfig


class TestKFold:
    def test_partitions_all_samples(self):
        folds = list(kfold_indices(100, 5))
        assert len(folds) == 5
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test) == list(range(100))

    def test_train_test_disjoint(self):
        for train, test in kfold_indices(50, 5):
            assert not set(train) & set(test)
            assert len(train) + len(test) == 50

    @given(n=st.integers(10, 200), k=st.integers(2, 8))
    @settings(max_examples=30)
    def test_partition_property(self, n, k):
        if k > n:
            return
        seen = []
        for train, test in kfold_indices(n, k, shuffle=True, random_state=1):
            seen.extend(test)
            assert len(test) >= n // k  # balanced folds
        assert sorted(seen) == list(range(n))

    def test_shuffle_changes_folds(self):
        a = [tuple(t) for _, t in kfold_indices(30, 3, shuffle=False)]
        b = [tuple(t) for _, t in kfold_indices(30, 3, shuffle=True, random_state=1)]
        assert a != b

    def test_bad_k(self):
        with pytest.raises(SelectionError):
            list(kfold_indices(5, 1))
        with pytest.raises(SelectionError):
            list(kfold_indices(5, 6))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score(np.array([1, 1, 0]), np.array([1, 0, 0])) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(SelectionError):
            accuracy_score(np.zeros(3), np.zeros(4))

    def test_confusion_matrix(self):
        mat, labels = confusion_matrix(
            np.array(["a", "a", "b"]), np.array(["a", "b", "b"])
        )
        assert labels == ["a", "b"]
        np.testing.assert_array_equal(mat, [[1, 1], [0, 1]])
        assert mat.sum() == 3

    def test_cross_val_scores_protocol(self, rng):
        from repro.selection import DecisionTreeClassifier

        X = rng.random((60, 2))
        y = (X[:, 0] > 0.5).astype(int)
        scores = cross_val_scores(
            lambda: DecisionTreeClassifier(max_depth=4), X, y, k=5
        )
        assert len(scores) == 5
        assert all(0.0 <= s <= 1.0 for s in scores)


class TestDataset:
    def test_grid_is_16_configs(self):
        assert len(paper_grid()) == 16

    def test_layers_are_28(self):
        assert len(paper_layers()) == 28

    def test_448_points(self, selection_dataset):
        assert len(selection_dataset) == 448
        assert selection_dataset.X.shape == (448, 12)

    def test_feature_names_count(self):
        assert len(FEATURE_NAMES) == 12
        assert FEATURE_NAMES[:2] == ("vlen_bits", "l2_mib")

    def test_labels_are_known_algorithms(self, selection_dataset):
        assert set(selection_dataset.y) <= set(ALGORITHM_NAMES)

    def test_every_algorithm_wins_somewhere(self, selection_dataset):
        """The co-design premise: no single algorithm fits all layers."""
        assert set(selection_dataset.y) == set(ALGORITHM_NAMES)

    def test_label_matches_cycles_argmin(self, selection_dataset):
        ds = selection_dataset
        for row in range(0, len(ds), 37):
            best = ds.cycles[row].argmin()
            assert ALGORITHM_NAMES[best] == ds.y[row]

    def test_winograd_inapplicable_is_inf(self, selection_dataset):
        ds = selection_dataset
        wg = ALGORITHM_NAMES.index("winograd")
        inapplicable = [
            i for i, s in enumerate(ds.specs) if s.kh != 3 or s.stride != 1
        ]
        assert inapplicable
        assert np.isinf(ds.cycles[inapplicable, wg]).all()

    def test_regret_non_negative(self, selection_dataset):
        ds = selection_dataset
        for row in range(0, len(ds), 53):
            for name in ALGORITHM_NAMES:
                if np.isfinite(ds.cycles_for(row, name)):
                    assert ds.regret(row, name) >= 0.0


class TestSelector:
    def test_accuracy_in_paper_band(self, trained_selector):
        """Paper: 92.8 % mean accuracy (range 91-96 %).  We require >= 88 %."""
        report = trained_selector.report
        assert report.mean_accuracy >= 0.88
        assert all(a >= 0.80 for a in report.fold_accuracies)

    def test_misprediction_regret_small(self, trained_selector):
        """Paper: 20.4 % mean layer-time error on mispredictions."""
        assert trained_selector.report.misprediction_mape <= 0.35

    def test_select_returns_algorithm_name(self, trained_selector):
        spec = paper_layers()[0]
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        assert trained_selector.select(spec, hw) in ALGORITHM_NAMES

    def test_select_network(self, trained_selector):
        specs = paper_layers()[:13]
        hw = HardwareConfig.paper2_rvv(2048, 4.0)
        chosen = trained_selector.select_network(specs, hw)
        assert set(chosen) == {s.index for s in specs}

    def test_untrained_selector_raises(self):
        sel = AlgorithmSelector()
        with pytest.raises(NotFittedError):
            sel.select(paper_layers()[0], HardwareConfig.paper2_rvv(512, 1.0))

    def test_report_summary_text(self, trained_selector):
        text = trained_selector.report.summary()
        assert "5-fold" in text and "mean=" in text
