"""Unit tests for the ``repro.serve`` building blocks.

Protocol parsing, clocks, middleware (breaker / admission / ledger),
micro-batching, trace generation and the SQLite cache tier — each piece
in isolation, so the integration suite can focus on the assembled
service.
"""

from __future__ import annotations

import asyncio
import json
import os
import sqlite3
import subprocess
import sys
import textwrap

import pytest

from repro import faults
from repro.algorithms.registry import layer_cycles
from repro.engine.cache import MemoCache, SQLiteTier
from repro.engine.keys import cache_key
from repro.errors import NotFittedError, ProtocolError, ServeError
from repro.nn.layer import ConvSpec
from repro.serve import (
    AdmissionController,
    CircuitBreaker,
    MicroBatcher,
    MonotonicClock,
    PredictionService,
    ServeRequest,
    ServeResponse,
    ServingLedger,
    TraceSpec,
    VirtualClock,
    error_response,
    generate_trace,
    replay,
    shed_response,
)
from repro.serving.simulator import RequestRecord, ServingStats
from repro.simulator.hwconfig import HardwareConfig

SPEC = ConvSpec(ic=64, oc=64, ih=56, iw=56, kh=3, kw=3, stride=1)
HW = HardwareConfig.paper2_rvv(512, 1.0)


# ---------------------------------------------------------------------- #
# protocol
# ---------------------------------------------------------------------- #
class TestProtocol:
    PAYLOAD = {
        "id": "r-9",
        "layer": {"ic": 64, "oc": 64, "ih": 56, "iw": 56,
                  "kh": 3, "kw": 3, "stride": 1},
        "hw": {"vlen_bits": 1024, "l2_mib": 2.0},
    }

    def test_round_trip(self):
        request = ServeRequest.from_dict(self.PAYLOAD)
        assert request.id == "r-9"
        assert request.spec.ic == 64 and request.spec.kh == 3
        assert request.hw.vlen_bits == 1024 and request.hw.l2_mib == 2.0
        again = ServeRequest.from_json(request.to_json())
        assert again.spec == request.spec
        assert again.hw == request.hw
        assert again.id == request.id

    def test_hw_overrides_beyond_the_preset(self):
        payload = dict(self.PAYLOAD, hw={"vlen_bits": 512, "l2_mib": 1.0,
                                         "freq_ghz": 2.5})
        request = ServeRequest.from_dict(payload)
        assert request.hw.freq_ghz == 2.5
        base = HardwareConfig.paper2_rvv(512, 1.0)
        assert request.hw.l1_kib == base.l1_kib  # untouched fields survive

    @pytest.mark.parametrize("mutate", [
        lambda p: p.update(bogus=1),                       # unknown top-level
        lambda p: p.pop("layer"),                          # no layer
        lambda p: p.update(layer="not-an-object"),
        lambda p: p["layer"].update(banana=3),             # unknown layer key
        lambda p: p.update(hw="not-an-object"),
        lambda p: p["hw"].update(cores=8),                 # unknown hw key
        lambda p: p.update(id=7),                          # non-string id
        lambda p: p["layer"].update(ic=-1),                # ConvSpec rejects
    ])
    def test_invalid_requests_raise_protocol_error(self, mutate):
        payload = json.loads(json.dumps(self.PAYLOAD))  # deep copy
        mutate(payload)
        with pytest.raises(ProtocolError):
            ServeRequest.from_dict(payload)

    def test_bad_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            ServeRequest.from_json("{nope")
        with pytest.raises(ProtocolError, match="not valid JSON"):
            ServeResponse.from_json("{nope")

    def test_response_round_trip_preserves_float_bits(self):
        response = ServeResponse(
            id="x", status="ok", algorithm="winograd",
            served_by="predictor", cycles=1.1e8 / 3.0,
            seconds=6.17e-05, dram_bytes=98304.0,
        )
        again = ServeResponse.from_json(response.to_json())
        assert again == response  # == on floats: bit-identical round trip

    def test_helpers(self):
        request = ServeRequest(spec=SPEC, hw=HW, id="h")
        assert shed_response(request).status == "shed"
        assert shed_response(request).id == "h"
        err = error_response("e", "boom")
        assert err.status == "error" and err.error == "boom"


# ---------------------------------------------------------------------- #
# clocks
# ---------------------------------------------------------------------- #
class TestClocks:
    def test_virtual_clock_advances_and_refuses_to_rewind(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        assert clock.advance_to(1.5) == 1.5
        assert clock.advance(0.5) == 2.0
        assert clock.advance_to(2.0) == 2.0  # standing still is fine
        with pytest.raises(ServeError, match="backwards"):
            clock.advance_to(1.0)
        with pytest.raises(ServeError):
            clock.advance(-0.1)

    def test_monotonic_clock_is_nondecreasing(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()


# ---------------------------------------------------------------------- #
# middleware
# ---------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(max_failures=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # streak broken
        assert not breaker.open
        for _ in range(3):
            breaker.record_failure()
        assert breaker.open
        breaker.record_success()  # success does not close an open breaker
        assert breaker.open
        breaker.reset()
        assert not breaker.open and breaker.consecutive_failures == 0

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ServeError):
            CircuitBreaker(max_failures=0)


class TestAdmissionController:
    def test_sheds_at_queue_limit(self):
        ctl = AdmissionController(queue_limit=2)
        assert ctl.admit() and ctl.admit()
        assert not ctl.admit()  # depth == limit: shed
        assert (ctl.admitted, ctl.shed, ctl.depth) == (2, 1, 2)
        ctl.started(2)
        assert ctl.admit()

    def test_unlimited_admits_everything(self):
        ctl = AdmissionController(queue_limit=None)
        assert all(ctl.admit() for _ in range(100))
        assert ctl.shed == 0

    def test_started_underflow_is_an_error(self):
        ctl = AdmissionController(queue_limit=4)
        ctl.admit()
        with pytest.raises(ServeError):
            ctl.started(2)

    def test_negative_limit_rejected(self):
        with pytest.raises(ServeError):
            AdmissionController(queue_limit=-1)

    def test_extra_depth_backpressure_sheds_early(self):
        """Downstream (router) backlog counts against the queue limit."""
        ctl = AdmissionController(queue_limit=4)
        assert ctl.admit(extra_depth=2)
        assert ctl.admit(extra_depth=2)  # depth 1 + 2 extra = 3 < 4
        assert not ctl.admit(extra_depth=2)  # 2 + 2 = 4: shed
        assert ctl.admit(extra_depth=0)  # local depth alone is fine
        assert (ctl.admitted, ctl.shed, ctl.depth) == (3, 1, 3)
        with pytest.raises(ServeError):
            ctl.admit(extra_depth=-1)


class TestServingLedger:
    def test_stats_conservation_and_slo(self):
        ledger = ServingLedger(slo_s=0.5)
        ledger.record(0.0, 0.1, 0.3)   # latency 0.3: within SLO
        ledger.record(0.2, 0.4, 1.0)   # latency 0.8: breach
        ledger.record_shed(0.25)
        ledger.record_fallback()
        stats = ledger.stats(servers=2)
        assert stats.offered == 3
        assert stats.n_requests == 2 and stats.shed == 1
        assert stats.slo_breaches == 1
        assert stats.fallbacks == 1
        assert stats.servers == 2

    def test_non_causal_timeline_is_an_error(self):
        ledger = ServingLedger()
        with pytest.raises(ServeError, match="non-causal"):
            ledger.record(1.0, 0.5, 2.0)  # start before arrival
        with pytest.raises(ServeError, match="non-causal"):
            ledger.record(0.0, 1.0, 0.5)  # finish before start

    def test_waiting_at_counts_admitted_unstarted(self):
        ledger = ServingLedger()
        ledger.record(0.0, 1.0, 2.0)
        ledger.record(0.0, 3.0, 4.0)
        assert ledger.waiting_at(0.5) == 2   # neither started yet
        assert ledger.waiting_at(1.0) == 1   # first started exactly at 1.0
        assert ledger.waiting_at(3.5) == 0

    def test_rejects_nonpositive_slo(self):
        with pytest.raises(ServeError):
            ServingLedger(slo_s=0.0)


def test_serving_stats_collect_empty_run():
    stats = ServingStats.collect([], servers=4)
    assert stats.n_requests == 0 and stats.offered == 0
    assert stats.p99 == 0.0 and stats.throughput_rps == 0.0


def test_serving_stats_collect_matches_manual_aggregate():
    records = [RequestRecord(0.0, 0.0, 1.0), RequestRecord(0.5, 1.0, 3.0)]
    stats = ServingStats.collect(records, servers=1, shed_arrivals=[0.7],
                                 fallbacks=2, slo_s=2.0)
    assert stats.horizon == 3.0
    assert stats.service_time == pytest.approx(1.5)
    assert stats.offered == 3 and stats.fallbacks == 2
    assert stats.slo_breaches == 1  # the 2.5 s latency


# ---------------------------------------------------------------------- #
# micro-batcher (asyncio)
# ---------------------------------------------------------------------- #
class TestMicroBatcher:
    REQ = ServeRequest(spec=SPEC, hw=HW, id="b")

    def _echo_handler(self, calls):
        def handler(requests):
            calls.append(len(requests))
            return [ServeResponse(id=r.id) for r in requests]
        return handler

    def test_size_flush_coalesces_one_handler_call(self):
        calls: list[int] = []

        async def scenario():
            batcher = MicroBatcher(self._echo_handler(calls),
                                   max_batch=3, max_wait_s=60.0)
            futures = [batcher.submit(self.REQ) for _ in range(3)]
            return await asyncio.gather(*futures)

        responses = asyncio.run(scenario())
        assert calls == [3]  # one flush, no timer needed
        assert all(r.id == "b" for r in responses)

    def test_age_flush_fires_without_filling_the_batch(self):
        calls: list[int] = []

        async def scenario():
            batcher = MicroBatcher(self._echo_handler(calls),
                                   max_batch=100, max_wait_s=0.005)
            future = batcher.submit(self.REQ)
            return await asyncio.wait_for(future, timeout=2.0)

        response = asyncio.run(scenario())
        assert calls == [1] and response.id == "b"

    def test_handler_failure_propagates_to_every_future(self):
        async def scenario():
            def boom(requests):
                raise RuntimeError("handler exploded")
            batcher = MicroBatcher(boom, max_batch=2, max_wait_s=60.0)
            f1 = batcher.submit(self.REQ)
            f2 = batcher.submit(self.REQ)
            results = await asyncio.gather(f1, f2, return_exceptions=True)
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_short_handler_reply_is_an_error(self):
        async def scenario():
            batcher = MicroBatcher(lambda reqs: [], max_batch=1,
                                   max_wait_s=60.0)
            return await asyncio.gather(batcher.submit(self.REQ),
                                        return_exceptions=True)

        (result,) = asyncio.run(scenario())
        assert isinstance(result, ServeError)

    def test_drain_flushes_pending(self):
        calls: list[int] = []

        async def scenario():
            batcher = MicroBatcher(self._echo_handler(calls),
                                   max_batch=100, max_wait_s=60.0)
            future = batcher.submit(self.REQ)
            await batcher.drain()
            return await future

        assert asyncio.run(scenario()).id == "b"
        assert calls == [1]

    def test_invalid_params_rejected(self):
        with pytest.raises(ServeError):
            MicroBatcher(lambda reqs: [], max_batch=0)
        with pytest.raises(ServeError):
            MicroBatcher(lambda reqs: [], max_wait_s=-1.0)


# ---------------------------------------------------------------------- #
# load generation
# ---------------------------------------------------------------------- #
class TestLoadGen:
    def test_same_seed_same_trace(self):
        spec = TraceSpec(pattern="bursty", n_requests=200, rate_rps=50.0,
                         seed=11)
        a = generate_trace(spec)
        b = generate_trace(spec)
        assert [(t.arrival, t.request.to_json()) for t in a] == [
            (t.arrival, t.request.to_json()) for t in b
        ]

    def test_different_seeds_differ(self):
        a = generate_trace(TraceSpec(n_requests=50, seed=1))
        b = generate_trace(TraceSpec(n_requests=50, seed=2))
        assert [t.arrival for t in a] != [t.arrival for t in b]

    @pytest.mark.parametrize("pattern", ["uniform", "diurnal", "bursty"])
    def test_patterns_produce_increasing_arrivals(self, pattern):
        trace = generate_trace(
            TraceSpec(pattern=pattern, n_requests=100, rate_rps=200.0, seed=5)
        )
        arrivals = [t.arrival for t in trace]
        assert len(trace) == 100
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)
        assert [t.request.id for t in trace] == [f"r-{i}" for i in range(100)]

    def test_burst_compresses_the_middle_third(self):
        slow = generate_trace(
            TraceSpec(pattern="uniform", n_requests=300, rate_rps=100.0,
                      seed=4)
        )
        fast = generate_trace(
            TraceSpec(pattern="bursty", n_requests=300, rate_rps=100.0,
                      seed=4, burst_factor=10.0)
        )
        def span(trace, lo, hi):
            return trace[hi].arrival - trace[lo].arrival
        # identical gaps outside the window, 10x tighter inside it
        assert span(fast, 100, 199) == pytest.approx(
            span(slow, 100, 199) / 10.0
        )
        assert span(fast, 0, 99) == pytest.approx(span(slow, 0, 99))

    @pytest.mark.parametrize("bad", [
        dict(pattern="sinusoid"),
        dict(n_requests=0),
        dict(rate_rps=0.0),
        dict(burst_factor=0.5),
        dict(diurnal_amplitude=1.0),
        dict(diurnal_period_s=0.0),
    ])
    def test_spec_validation(self, bad):
        with pytest.raises(ServeError):
            TraceSpec(**bad)

    def test_empty_workload_rejected(self):
        with pytest.raises(ServeError, match="workload"):
            generate_trace(TraceSpec(n_requests=1), workload=[])

    def test_replay_validates_parameters(self):
        service = PredictionService()
        trace = generate_trace(TraceSpec(n_requests=1))
        with pytest.raises(ServeError):
            replay(service, trace, servers=0)
        with pytest.raises(ServeError):
            replay(service, trace, max_batch=0)


# ---------------------------------------------------------------------- #
# HTTP error paths: bad bodies get an HTTP answer, never a hang-up
# ---------------------------------------------------------------------- #
class TestHttpErrorPaths:
    """Satellite fix (ISSUE 10): malformed JSON → 400, oversized → 413."""

    def _boot(self, tmp_path):
        from repro.engine.executor import EvaluationEngine
        from repro.serve import AsyncServeServer, ServeApp

        service = PredictionService(engine=EvaluationEngine())
        app = ServeApp(service, queue_limit=64, max_batch=8, max_wait_s=0.002)
        return AsyncServeServer(app, unix_path=tmp_path / "serve.sock")

    def _roundtrip(self, tmp_path, raw: bytes) -> tuple[int, dict]:
        async def scenario():
            server = self._boot(tmp_path)
            await server.start()
            try:
                reader, writer = await asyncio.open_unix_connection(
                    str(tmp_path / "serve.sock")
                )
                writer.write(raw)
                if hasattr(writer, "write_eof"):
                    writer.write_eof()
                await writer.drain()
                data = await asyncio.wait_for(reader.read(), timeout=10.0)
                writer.close()
                return data
            finally:
                await server.stop()

        data = asyncio.run(scenario())
        assert data, "the server must answer, not drop the connection"
        head, body = data.decode().split("\r\n\r\n", 1)
        return int(head.split()[1]), json.loads(body)

    def test_malformed_json_body_is_400(self, tmp_path):
        body = b"{this is not json"
        raw = (
            b"POST /v1/select HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
        )
        status, payload = self._roundtrip(tmp_path, raw)
        assert status == 400
        assert "bad JSON" in payload["error"]

    def test_truncated_body_is_400_not_a_dropped_connection(self, tmp_path):
        # Content-Length promises 1000 bytes; the client sends 4 and EOFs
        raw = (
            b"POST /v1/select HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 1000\r\n\r\noops"
        )
        status, payload = self._roundtrip(tmp_path, raw)
        assert status == 400
        assert "truncated" in payload["error"]

    def test_negative_content_length_is_400(self, tmp_path):
        raw = (
            b"POST /v1/select HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: -5\r\n\r\n"
        )
        status, payload = self._roundtrip(tmp_path, raw)
        assert status == 400

    def test_oversized_body_is_413(self, tmp_path):
        from repro.serve.server import MAX_BODY_BYTES

        raw = (
            b"POST /v1/select HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: %d\r\n\r\n" % (MAX_BODY_BYTES + 1)
        )
        status, payload = self._roundtrip(tmp_path, raw)
        assert status == 413
        assert "too large" in payload["error"]


# ---------------------------------------------------------------------- #
# prediction service core
# ---------------------------------------------------------------------- #
class TestPredictionService:
    def test_no_selector_serves_from_safe_fallback(self):
        service = PredictionService()
        response = service.handle(ServeRequest(spec=SPEC, hw=HW, id="f"))
        assert response.status == "ok"
        assert response.served_by == "fallback"
        assert response.algorithm == "im2col_gemm6"
        direct = layer_cycles("im2col_gemm6", SPEC, HW, fallback=True)
        assert response.cycles == direct.cycles

    def test_selection_is_memoized_per_pair(self, trained_selector):
        service = PredictionService(selector=trained_selector)
        r1 = service.handle(ServeRequest(spec=SPEC, hw=HW, id="m1"))
        assert service.snapshot()["selection_cache_entries"] == 1
        r2 = service.handle(ServeRequest(spec=SPEC, hw=HW, id="m2"))
        assert r1.algorithm == r2.algorithm
        assert r2.served_by == "predictor"

    def test_broken_selector_trips_breaker_then_bypasses_it(self):
        class Exploding:
            def select_many(self, pairs):
                raise RuntimeError("forest on fire")

        service = PredictionService(
            selector=Exploding(), max_selector_failures=2
        )
        requests = [ServeRequest(spec=SPEC, hw=HW, id=f"x{i}")
                    for i in range(3)]
        responses = service.handle_batch(requests)
        assert service.breaker.open
        assert all(r.status == "ok" for r in responses)
        assert all(r.served_by == "fallback" for r in responses)

    def test_probe_is_a_cached_canary(self):
        service = PredictionService()
        assert service.probe() is True
        hits_before = service.engine.cache.stats.hits
        assert service.probe() is True  # second probe: memo-cache hit
        assert service.engine.cache.stats.hits > hits_before

    def test_probe_reports_false_on_broken_engine(self):
        service = PredictionService()

        class Broken:
            def evaluate_many(self, tasks, **kwargs):
                raise RuntimeError("engine down")

        service.engine = Broken()
        assert service.probe() is False

    def test_validates_configuration(self):
        with pytest.raises(ServeError):
            PredictionService(fallback_policy="panic")
        with pytest.raises(Exception):
            PredictionService(safe_algorithm="quantum")
        with pytest.raises(ServeError):
            PredictionService(selection_cache_size=-1)


# ---------------------------------------------------------------------- #
# selector batch API
# ---------------------------------------------------------------------- #
class TestSelectorBatchAPI:
    def test_select_many_matches_select(self, trained_selector):
        pairs = [(SPEC, HW),
                 (ConvSpec(ic=3, oc=64, ih=224, iw=224, kh=3, kw=3, stride=1),
                  HardwareConfig.paper2_rvv(1024, 2.0))]
        batched = trained_selector.select_many(pairs)
        assert batched == [trained_selector.select(s, hw) for s, hw in pairs]

    def test_select_many_empty(self, trained_selector):
        assert trained_selector.select_many([]) == []

    def test_unfitted_selector_raises(self):
        from repro.selection.predictor import AlgorithmSelector

        with pytest.raises(NotFittedError):
            AlgorithmSelector().select_many([(SPEC, HW)])

    def test_features_many_stacks_feature_rows(self, trained_selector):
        pairs = [(SPEC, HW), (SPEC, HardwareConfig.paper2_rvv(256, 0.5))]
        X = trained_selector.features_many(pairs)
        assert X.shape == (2, 12)
        assert (X[0] == trained_selector.features(SPEC, HW)[0]).all()


# ---------------------------------------------------------------------- #
# SQLite cache tier
# ---------------------------------------------------------------------- #
class TestSQLiteTier:
    def _record(self):
        return layer_cycles("im2col_gemm6", SPEC, HW)

    def _key(self):
        return cache_key("im2col_gemm6", SPEC, HW)

    def test_survives_across_cache_instances(self, tmp_path):
        db = tmp_path / "memo.db"
        record = self._record()
        first = MemoCache(sqlite_path=db)
        first.put(self._key(), record)
        # a brand-new cache (fresh memory tier) hits the SQLite tier
        second = MemoCache(sqlite_path=db)
        got = second.get(self._key())
        assert got is not None and got.cycles == record.cycles
        assert second.stats.sqlite_hits == 1
        assert second.stats.disk_hits == 1  # sqlite hits count as disk hits
        # and the hit was promoted into memory
        second.get(self._key())
        assert second.stats.hits == 1

    def test_corrupt_payload_is_deleted_and_counted(self, tmp_path):
        db = tmp_path / "memo.db"
        cache = MemoCache(sqlite_path=db)
        cache.put(self._key(), self._record())
        with sqlite3.connect(db) as conn:  # garble the row out-of-band
            conn.execute("UPDATE memo SET payload = ?", ('{"trunc',))
        fresh = MemoCache(sqlite_path=db)
        assert fresh.get(self._key()) is None
        assert fresh.stats.corrupt_entries == 1
        assert fresh.stats.misses == 1
        with sqlite3.connect(db) as conn:  # the bad row is gone
            assert conn.execute("SELECT COUNT(*) FROM memo").fetchone()[0] == 0

    def test_stale_schema_rows_read_as_misses(self, tmp_path):
        db = tmp_path / "memo.db"
        cache = MemoCache(sqlite_path=db)
        cache.put(self._key(), self._record())
        with sqlite3.connect(db) as conn:
            conn.execute("UPDATE memo SET schema = schema + 1")
        fresh = MemoCache(sqlite_path=db)
        assert fresh.get(self._key()) is None
        assert fresh.stats.corrupt_entries == 0  # stale, not corrupt

    @pytest.mark.chaos
    def test_injected_write_error_degrades_visibly(self, tmp_path):
        cache = MemoCache(sqlite_path=tmp_path / "memo.db")
        with faults.inject("seed=3,cache.write_error=1.0"):
            cache.put(self._key(), self._record())
        assert cache.stats.write_errors == 1
        assert cache.get(self._key()) is not None  # memory tier still has it
        fresh = MemoCache(sqlite_path=tmp_path / "memo.db")
        assert fresh.get(self._key()) is None  # but nothing was persisted

    @pytest.mark.chaos
    def test_injected_corruption_recovers_on_read(self, tmp_path):
        db = tmp_path / "memo.db"
        cache = MemoCache(sqlite_path=db)
        with faults.inject("seed=3,cache.corrupt=1.0"):
            cache.put(self._key(), self._record())
        fresh = MemoCache(sqlite_path=db)
        assert fresh.get(self._key()) is None
        assert fresh.stats.corrupt_entries == 1

    def test_clear_disk_empties_the_sqlite_tier(self, tmp_path):
        db = tmp_path / "memo.db"
        cache = MemoCache(sqlite_path=db)
        cache.put(self._key(), self._record())
        cache.clear(disk=True)
        assert cache.get(self._key()) is None

    def test_tier_len_contains_and_close(self, tmp_path):
        tier = SQLiteTier(tmp_path / "t.db")
        assert len(tier) == 0 and "k" not in tier
        tier.put("k", json.dumps(
            {"algorithm": "im2col_gemm6", "phases": []}
        ))
        assert len(tier) == 1 and "k" in tier
        tier.delete("k")
        assert len(tier) == 0
        tier.close()
        assert len(tier) == 0  # reconnects lazily after close

    def test_cross_process_sharing(self, tmp_path):
        """A child process warms the cache; the parent reads the entry."""
        db = tmp_path / "memo.db"
        key = self._key()
        child = textwrap.dedent(f"""
            from repro.engine.cache import MemoCache
            from repro.algorithms.registry import layer_cycles
            from repro.nn.layer import ConvSpec
            from repro.simulator.hwconfig import HardwareConfig

            spec = ConvSpec(ic=64, oc=64, ih=56, iw=56, kh=3, kw=3, stride=1)
            hw = HardwareConfig.paper2_rvv(512, 1.0)
            cache = MemoCache(sqlite_path={str(db)!r})
            cache.put({key!r}, layer_cycles("im2col_gemm6", spec, hw))
        """)
        env = dict(os.environ, PYTHONPATH="src")
        subprocess.run([sys.executable, "-c", child], check=True, env=env,
                       cwd="/root/repo", timeout=120)
        cache = MemoCache(sqlite_path=db)
        got = cache.get(key)
        assert got is not None
        assert got.cycles == self._record().cycles
        assert cache.stats.sqlite_hits == 1
