"""Intrinsics-level kernels: correctness on the vector machine + trace shape."""

import numpy as np
import pytest

from repro.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.algorithms.gemm_kernels import (
    UNROLL,
    gemm3_vectorized,
    gemm6_vectorized,
    gemm_naive,
)
from repro.algorithms.im2col import im2col, im2col_vectorized
from repro.isa import VectorMachine
from repro.nn.layer import ConvSpec
from repro.nn.reference import conv2d_reference


def random_case(rng, **dims):
    spec = ConvSpec(**dims)
    x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
    w = (0.3 * rng.standard_normal(
        (spec.oc, spec.ic, spec.kh, spec.kw)
    )).astype(np.float32)
    return spec, x, w


class TestGemmKernels:
    @pytest.mark.parametrize("m,k,n", [(4, 5, 40), (17, 3, 33), (16, 16, 16),
                                       (1, 1, 70), (19, 7, 100)])
    @pytest.mark.parametrize("kernel", [gemm3_vectorized, gemm6_vectorized])
    def test_matches_numpy(self, rng, m, k, n, kernel):
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        machine = VectorMachine(512, trace=False)
        a_buf = machine.alloc_from("a", a)
        b_buf = machine.alloc_from("b", b)
        c_buf = machine.alloc("c", m * n)
        kernel(machine, a_buf, b_buf, c_buf, m, k, n)
        np.testing.assert_allclose(
            c_buf.array.reshape(m, n), a @ b, atol=1e-4
        )

    def test_alpha_scaling(self, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        b = rng.standard_normal((4, 8)).astype(np.float32)
        machine = VectorMachine(256, trace=False)
        bufs = [machine.alloc_from("a", a), machine.alloc_from("b", b),
                machine.alloc("c", 32)]
        gemm3_vectorized(machine, *bufs, 4, 4, 8, alpha=2.0)
        np.testing.assert_allclose(bufs[2].array.reshape(4, 8), 2 * a @ b, atol=1e-4)

    def test_gemm_naive_matches(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((4, 5)).astype(np.float32)
        np.testing.assert_allclose(gemm_naive(a, b), a @ b, atol=1e-5)

    def test_unroll_is_paper_16(self):
        assert UNROLL == 16

    def test_long_vector_uses_fewer_instructions(self, rng):
        a = rng.standard_normal((8, 8)).astype(np.float32)
        b = rng.standard_normal((8, 256)).astype(np.float32)

        def count(vlen):
            m = VectorMachine(vlen, trace=False)
            gemm3_vectorized(
                m, m.alloc_from("a", a), m.alloc_from("b", b), m.alloc("c", 8 * 256),
                8, 8, 256,
            )
            return m.trace.stats.vector_instrs + m.trace.stats.memory_instrs

        assert count(2048) < count(512)


class TestIm2colVectorized:
    @pytest.mark.parametrize(
        "dims",
        [dict(ic=2, oc=1, ih=7, iw=9, kh=3, kw=3),
         dict(ic=3, oc=1, ih=8, iw=8, kh=3, kw=3, stride=2),
         dict(ic=2, oc=1, ih=5, iw=5, kh=1, kw=1)],
    )
    def test_matches_functional(self, rng, dims):
        spec, x, _ = random_case(rng, **dims)
        machine = VectorMachine(512, trace=False)
        col_buf = im2col_vectorized(spec, x, machine)
        np.testing.assert_array_equal(
            col_buf.array.reshape(spec.gemm_k, spec.gemm_n), im2col(spec, x)
        )

    def test_strided_loads_for_stride2(self, rng):
        spec, x, _ = random_case(rng, ic=1, oc=1, ih=8, iw=8, kh=3, kw=3, stride=2)
        machine = VectorMachine(512, trace=True)
        im2col_vectorized(spec, x, machine)
        names = {e.name for e in machine.trace if hasattr(e, "is_store")}
        assert "vlse" in names


class TestVectorizedConvolutions:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_matches_reference(self, rng, name, small_spec, small_tensors):
        x, w = small_tensors
        machine = VectorMachine(512, trace=False)
        out = get_algorithm(name).run_vectorized(small_spec, x, w, machine)
        ref = conv2d_reference(small_spec, x, w)
        tol = 1e-3 if name == "winograd" else 1e-4
        np.testing.assert_allclose(out, ref, atol=tol)
        assert machine.trace.stats.total_instrs > 0

    @pytest.mark.parametrize("vlen", [256, 512, 2048])
    def test_vla_portability(self, rng, vlen, small_spec, small_tensors):
        """The same kernel runs unmodified at any vector length (VLA)."""
        x, w = small_tensors
        ref = conv2d_reference(small_spec, x, w)
        for name in ("direct", "im2col_gemm3", "winograd"):
            machine = VectorMachine(vlen, trace=False)
            out = get_algorithm(name).run_vectorized(small_spec, x, w, machine)
            np.testing.assert_allclose(out, ref, atol=2e-3)

    def test_direct_stride2_vectorized(self, rng):
        spec, x, w = random_case(rng, ic=3, oc=5, ih=10, iw=10, kh=3, kw=3, stride=2)
        machine = VectorMachine(512, trace=False)
        out = get_algorithm("direct").run_vectorized(spec, x, w, machine)
        np.testing.assert_allclose(out, conv2d_reference(spec, x, w), atol=1e-4)

    def test_winograd_intertile_many_channels(self, rng):
        """IC > channels-per-vector: multiple channel groups per tile."""
        spec, x, w = random_case(rng, ic=12, oc=6, ih=12, iw=12, kh=3, kw=3)
        machine = VectorMachine(512, trace=False)
        out = get_algorithm("winograd").run_vectorized(spec, x, w, machine)
        np.testing.assert_allclose(
            out, conv2d_reference(spec, x, w), atol=2e-3
        )

    def test_winograd_fallback_ic3(self, rng):
        """IC=3 < 4: the single-tile fallback path still computes correctly."""
        spec, x, w = random_case(rng, ic=3, oc=4, ih=9, iw=9, kh=3, kw=3)
        machine = VectorMachine(512, trace=False)
        out = get_algorithm("winograd").run_vectorized(spec, x, w, machine)
        np.testing.assert_allclose(out, conv2d_reference(spec, x, w), atol=2e-3)
