"""Chaos suite: serving under overload, predictor failures and bursts.

The acceptance bar: at 2x saturation throughput, admission control keeps
the p99 latency of *admitted* requests bounded (vs. unbounded queue
growth without it), with every shed request accounted for; predictor
failures degrade to the safe fallback algorithm instead of erroring.
"""

from __future__ import annotations

import pytest

from repro import faults, obs
from repro.errors import ConfigError
from repro.serving import ResilientServingSimulator, ServingSimulator

pytestmark = pytest.mark.chaos  # fault-injection suite: full-suite CI job


@pytest.fixture
def recorder():
    rec = obs.enable()
    yield rec
    obs.disable()


def counters(rec) -> dict[str, float]:
    return rec.snapshot()["counters"]


class TestAdmissionControl:
    def test_overload_p99_bounded_and_shed_accounted(self, recorder):
        """2x capacity: bounded queue -> bounded latency, all load accounted."""
        service, limit, n = 0.01, 10, 2000
        bounded = ServingSimulator(
            servers=1, service_time_s=service, seed=7, queue_limit=limit
        )
        stats = bounded.run(2.0 * bounded.capacity_rps, n_requests=n)
        # worst admitted case: full queue ahead of you, plus your own service
        assert stats.p99 <= (limit + 1) * service + 1e-9
        assert stats.shed > 0
        assert stats.offered == stats.n_requests + stats.shed == n
        assert 0.0 < stats.shed_rate < 1.0

        unbounded = ServingSimulator(servers=1, service_time_s=service, seed=7)
        wild = unbounded.run(2.0 * unbounded.capacity_rps, n_requests=n)
        assert wild.shed == 0
        assert wild.p99 > 10 * stats.p99  # queue grows without bound
        assert counters(recorder)["serving.shed"] == stats.shed

    def test_no_shedding_below_capacity(self):
        sim = ServingSimulator(
            servers=2, service_time_s=0.01, seed=3, queue_limit=50
        )
        stats = sim.run(0.5 * sim.capacity_rps, n_requests=1000)
        assert stats.shed == 0 and stats.offered == 1000

    def test_queue_limit_zero_admits_only_idle_servers(self):
        sim = ServingSimulator(
            servers=1, service_time_s=0.01, seed=5, queue_limit=0
        )
        stats = sim.run(2.0 * sim.capacity_rps, n_requests=500)
        # nobody ever waits: every admitted request starts immediately
        assert all(r.queue_wait == 0.0 for r in stats.records)
        assert stats.shed > 0

    def test_shedding_is_deterministic(self):
        def run():
            sim = ServingSimulator(
                servers=1, service_time_s=0.01, seed=11, queue_limit=5
            )
            s = sim.run(2.0 * sim.capacity_rps, n_requests=800)
            return s.shed_arrivals, [r.latency for r in s.records]

        assert run() == run()

    def test_slo_breach_accounting(self):
        sim = ServingSimulator(
            servers=1, service_time_s=0.01, seed=7, queue_limit=20,
            slo_s=0.05,
        )
        stats = sim.run(1.5 * sim.capacity_rps, n_requests=1000)
        expected = sum(1 for r in stats.records if r.latency > 0.05)
        assert stats.slo_breaches == expected > 0
        assert stats.slo_breach_rate == expected / stats.n_requests

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            ServingSimulator(servers=1, service_time_s=0.01, queue_limit=-1)
        with pytest.raises(ConfigError):
            ServingSimulator(servers=1, service_time_s=0.01, slo_s=0.0)


class TestDegradedMode:
    def test_selector_drives_service_times(self):
        sim = ResilientServingSimulator(
            servers=1, service_time_s=0.02, seed=3,
            selector=lambda i: 0.01,  # predictor picks a faster algorithm
        )
        fast = sim.run(20.0, n_requests=500)
        assert fast.fallbacks == 0
        slow = ServingSimulator(servers=1, service_time_s=0.02, seed=3).run(
            20.0, n_requests=500
        )
        assert fast.mean_latency < slow.mean_latency

    def test_injected_predictor_errors_fall_back(self, recorder):
        sim = ResilientServingSimulator(
            servers=1, service_time_s=0.01, seed=3,
            selector=lambda i: 0.01,
            fallback_service_time_s=0.02,  # the safe algorithm is slower
            max_selector_failures=1000,    # keep the circuit closed
        )
        with faults.inject("seed=9,serving.predictor_error=0.2"):
            stats = sim.run(20.0, n_requests=500)
        assert 0 < stats.fallbacks < 500
        c = counters(recorder)
        assert c["serving.fallbacks"] == stats.fallbacks
        assert c["faults.injected.serving.predictor_error"] == stats.fallbacks

    def test_degraded_run_is_deterministic(self):
        def run():
            sim = ResilientServingSimulator(
                servers=1, service_time_s=0.01, seed=3,
                selector=lambda i: 0.01, fallback_service_time_s=0.02,
            )
            with faults.inject("seed=9,serving.predictor_error=0.2"):
                s = sim.run(20.0, n_requests=400)
            return s.fallbacks, [r.latency for r in s.records]

        assert run() == run()

    def test_no_selector_serves_everything_degraded(self):
        sim = ResilientServingSimulator(
            servers=1, service_time_s=0.01, seed=3,
            fallback_service_time_s=0.01,
        )
        stats = sim.run(20.0, n_requests=200)
        assert stats.fallbacks == 200

    def test_circuit_breaker_opens_after_consecutive_failures(self, recorder):
        calls = []

        def broken(i: int) -> float:
            calls.append(i)
            raise RuntimeError("predictor down")

        sim = ResilientServingSimulator(
            servers=1, service_time_s=0.01, seed=3,
            selector=broken, fallback_service_time_s=0.01,
            max_selector_failures=3,
        )
        stats = sim.run(20.0, n_requests=200)
        assert stats.fallbacks == 200
        assert len(calls) == 3  # circuit opened: selector never asked again
        assert counters(recorder)["serving.circuit_opened"] == 1

    def test_circuit_resets_between_runs(self):
        failures = iter([True] * 3 + [False] * 10_000)

        def flaky(i: int) -> float:
            if next(failures):
                raise RuntimeError("transient")
            return 0.01

        sim = ResilientServingSimulator(
            servers=1, service_time_s=0.01, seed=3,
            selector=flaky, max_selector_failures=3,
        )
        first = sim.run(20.0, n_requests=100)
        assert first.fallbacks == 100  # opened on request 3, stayed open
        second = sim.run(20.0, n_requests=100)
        assert second.fallbacks == 0  # _begin_run closed the circuit

    def test_non_positive_selector_result_counts_as_failure(self):
        sim = ResilientServingSimulator(
            servers=1, service_time_s=0.01, seed=3,
            selector=lambda i: 0.0, fallback_service_time_s=0.01,
            max_selector_failures=5,
        )
        stats = sim.run(20.0, n_requests=50)
        assert stats.fallbacks == 50

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            ResilientServingSimulator(
                servers=1, service_time_s=0.01, fallback_service_time_s=0.0
            )
        with pytest.raises(ConfigError):
            ResilientServingSimulator(
                servers=1, service_time_s=0.01, max_selector_failures=0
            )


class TestBurstInjection:
    def test_burst_raises_shedding(self, recorder):
        def shed_with(spec: str | None) -> int:
            sim = ServingSimulator(
                servers=1, service_time_s=0.01, seed=13, queue_limit=10
            )
            with faults.inject(spec):
                return sim.run(
                    0.9 * sim.capacity_rps, n_requests=1500
                ).shed

        calm = shed_with(None)
        bursty = shed_with("seed=13,serving.burst=3")
        assert bursty > calm
        assert counters(recorder)["faults.injected.serving.burst"] == 1

    def test_burst_preserves_request_count(self):
        sim = ServingSimulator(
            servers=1, service_time_s=0.01, seed=13, queue_limit=10
        )
        with faults.inject("seed=13,serving.burst=2"):
            stats = sim.run(50.0, n_requests=900)
        assert stats.offered == 900
