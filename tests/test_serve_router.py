"""The replica-pool router: sharding, health, failover, chaos acceptance.

Four layers:

* unit tests of the :class:`ReplicaHealth` state machine;
* unit tests of :class:`ReplicaRouter` dispatch semantics against stub
  replicas — retry on a *different* replica, deadline budgets, hedging,
  drain/rejoin, probe-driven ejection;
* the live transport: a router-backed app over a real unix socket
  (health summary, ``/v1/replicas/<name>/{drain,rejoin}`` admin);
* the chaos acceptance run (slow+chaos): a seeded kill of 1-of-4
  replicas during a 10k-request bursty virtual-clock trace completes
  with zero errored admitted requests, admitted p99 within the derived
  SLO, conserved counters, and bit-identical results across two
  *processes*.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import subprocess
import sys
from collections import deque
from pathlib import Path

import pytest

from repro import faults
from repro.algorithms.registry import layer_cycles
from repro.engine.executor import EvaluationEngine
from repro.errors import ServeError
from repro.nn.layer import ConvSpec
from repro.nn.models.vgg16 import vgg16_conv_specs
from repro.serve import (
    AsyncServeServer,
    InProcessReplica,
    PredictionService,
    ReplicaHealth,
    ReplicaRouter,
    ServeApp,
    ServeRequest,
    ServeResponse,
    TraceSpec,
    generate_trace,
    routed_replay,
)
from repro.serve.health import DEGRADED, DRAINING, EJECTED, HEALTHY
from repro.serve.router import ReplicaHandle
from repro.simulator.hwconfig import HardwareConfig

REPO = Path(__file__).resolve().parent.parent


def four_hw_pool() -> list[HardwareConfig]:
    """Four distinct hardware configurations → four router shard keys."""
    return [
        HardwareConfig.paper2_rvv(v, l2)
        for v in (256, 512)
        for l2 in (1.0, 2.0)
    ]


def router_workload() -> list[tuple[ConvSpec, HardwareConfig]]:
    specs = vgg16_conv_specs()
    return [(s, hw) for hw in four_hw_pool() for s in specs]


def make_request(i: int = 0, hw: HardwareConfig | None = None) -> ServeRequest:
    return ServeRequest(
        spec=ConvSpec(ic=64, oc=64, ih=56, iw=56, kh=3, kw=3, stride=1),
        hw=hw or HardwareConfig.paper2_rvv(512, 1.0),
        id=f"q-{i}",
    )


class StubReplica(ReplicaHandle):
    """A scriptable replica: per-dispatch failure schedule, fixed price."""

    def __init__(
        self,
        name: str,
        seconds: float = 0.01,
        fail_times: tuple[bool, ...] = (),
        probe_ok: bool = True,
    ) -> None:
        self.name = name
        self.seconds = seconds
        self.fail = deque(fail_times)
        self.probe_ok = probe_ok
        self.dispatched: list[list[str]] = []

    def dispatch(self, requests: list[ServeRequest]) -> list[ServeResponse]:
        if self.fail and self.fail.popleft():
            raise RuntimeError("scripted dispatch failure")
        self.dispatched.append([r.id for r in requests])
        return [
            ServeResponse(
                id=r.id, status="ok", algorithm="stub",
                served_by="fallback", seconds=self.seconds,
            )
            for r in requests
        ]

    def probe(self) -> bool:
        return self.probe_ok


def stub_router(n: int = 3, **kwargs) -> tuple[ReplicaRouter, dict]:
    stubs = {f"replica-{i}": StubReplica(f"replica-{i}") for i in range(n)}
    return ReplicaRouter(list(stubs.values()), **kwargs), stubs


# ---------------------------------------------------------------------- #
# the health state machine
# ---------------------------------------------------------------------- #
class TestReplicaHealth:
    def test_degrade_eject_recover_cycle(self):
        h = ReplicaHealth("r", degrade_after=1, eject_after=3, recover_after=2)
        assert h.state == HEALTHY and h.available(0.0)
        assert h.record_failure(0.0) == "degraded"
        assert h.state == DEGRADED and h.available(0.0)
        assert h.record_failure(0.0) is None
        assert h.record_failure(0.0) == "ejected"
        assert h.state == EJECTED and not h.available(0.0)
        assert h.eject_until is not None and h.eject_until > 0.0
        # cooldown over: half-open, a trial is allowed
        t = h.eject_until
        assert h.half_open(t) and h.available(t)
        assert h.record_success(t) == "recovered"
        assert h.state == DEGRADED
        assert h.record_success(t) == "healthy"
        assert h.state == HEALTHY

    def test_half_open_failure_reejects_with_longer_cooldown(self):
        h = ReplicaHealth("r", eject_after=1, eject_for_s=1.0)
        h.record_failure(0.0)
        first = h.eject_until
        assert first is not None
        assert h.record_failure(first) == "re-ejected"
        assert h.eject_until is not None
        # backoff doubles (jitter only stretches further)
        assert h.eject_until - first >= 2.0

    def test_cooldowns_are_seeded_and_deterministic(self):
        a = ReplicaHealth("r", seed=5, eject_after=1)
        b = ReplicaHealth("r", seed=5, eject_after=1)
        c = ReplicaHealth("r", seed=6, eject_after=1)
        for h in (a, b, c):
            h.record_failure(0.0)
        assert a.eject_until == b.eject_until
        assert a.eject_until != c.eject_until

    def test_slow_streak_degrades(self):
        h = ReplicaHealth("r", slow_after=2)
        assert h.record_slow(0.0) is None
        assert h.record_slow(0.0) == "degraded"
        assert h.state == DEGRADED

    def test_drain_and_rejoin_via_half_open(self):
        h = ReplicaHealth("r")
        h.drain()
        assert h.state == DRAINING and not h.available(0.0)
        h.rejoin(5.0)
        assert h.state == EJECTED and h.half_open(5.0)
        assert h.record_success(5.0) == "recovered"

    def test_rejoin_requires_draining(self):
        with pytest.raises(ServeError):
            ReplicaHealth("r").rejoin(0.0)

    def test_validation(self):
        with pytest.raises(ServeError):
            ReplicaHealth("r", degrade_after=0)
        with pytest.raises(ServeError):
            ReplicaHealth("r", degrade_after=5, eject_after=3)
        with pytest.raises(ServeError):
            ReplicaHealth("r", eject_for_s=0.0)


# ---------------------------------------------------------------------- #
# sharding
# ---------------------------------------------------------------------- #
class TestSharding:
    def test_ring_order_is_deterministic_and_complete(self):
        r1, _ = stub_router(4, seed=7)
        r2, _ = stub_router(4, seed=7)
        for hw in four_hw_pool():
            key = ReplicaRouter.shard_key(make_request(0, hw))
            order = r1.ring_order(key)
            assert order == r2.ring_order(key)
            assert sorted(order) == sorted(r1.replicas)

    def test_same_config_same_replica_distinct_configs_spread(self):
        router, _ = stub_router(4, seed=7)
        prefs = {
            hw.vlen_bits * 100 + int(hw.l2_mib): router.preferred(
                make_request(0, hw)
            )
            for hw in four_hw_pool()
        }
        # affinity: repeat traffic for one config lands on one replica
        for hw in four_hw_pool():
            assert router.preferred(make_request(1, hw)) == prefs[
                hw.vlen_bits * 100 + int(hw.l2_mib)
            ]
        # spread: the four configs do not all pile on one replica
        assert len(set(prefs.values())) >= 2

    def test_seed_changes_the_ring(self):
        a, _ = stub_router(4, seed=0)
        b, _ = stub_router(4, seed=99)
        keys = [
            ReplicaRouter.shard_key(make_request(0, hw))
            for hw in four_hw_pool()
        ]
        assert any(a.ring_order(k) != b.ring_order(k) for k in keys)


# ---------------------------------------------------------------------- #
# dispatch semantics (stub replicas, priced mode)
# ---------------------------------------------------------------------- #
class TestDispatch:
    def test_happy_path_counts_direct_completion(self):
        router, _ = stub_router(3)
        [outcome] = router.route_priced([(0.0, make_request())], 0.0)
        assert outcome.response.status == "ok"
        assert outcome.replica == outcome.preferred
        assert outcome.attempts == 1
        assert outcome.response.replica == outcome.replica
        assert outcome.response.attempts == 1
        assert router.stats.completed_direct == 1
        assert router.stats.retries == 0

    def test_retry_lands_on_a_different_replica(self):
        router, stubs = stub_router(3, max_retries=2, retry_backoff_s=0.001)
        preferred = router.preferred(make_request())
        stubs[preferred].fail.extend([True])
        [outcome] = router.route_priced([(0.0, make_request())], 0.0)
        assert outcome.response.status == "ok"
        assert outcome.replica != preferred
        assert outcome.attempts == 2
        assert router.stats.retries == 1
        assert router.stats.failovers == 1
        assert router.stats.completed_failover == 1
        assert router.stats.dispatch_failures == 1
        # the failure degraded the preferred replica
        assert router.health[preferred].state == DEGRADED

    def test_all_replicas_failing_yields_unrouted_error(self):
        router, stubs = stub_router(3, max_retries=2)
        for stub in stubs.values():
            stub.fail.extend([True] * 5)
        [outcome] = router.route_priced([(0.0, make_request())], 0.0)
        assert outcome.response.status == "error"
        assert outcome.replica == ""
        assert "no replica available" in outcome.response.error
        assert router.stats.unrouted == 1

    def test_deadline_expires_before_dispatch(self):
        router, _ = stub_router(2, deadline_s=0.05)
        [outcome] = router.route_priced([(0.0, make_request())], 0.1)
        assert outcome.response.status == "deadline"
        assert router.stats.deadline_misses == 1
        assert router.stats.dispatches == 0

    def test_deadline_misses_when_priced_finish_is_late(self):
        stubs = [StubReplica("a", seconds=0.2), StubReplica("b", seconds=0.2)]
        router = ReplicaRouter(stubs, deadline_s=0.1)
        [outcome] = router.route_priced([(0.0, make_request())], 0.0)
        assert outcome.response.status == "deadline"
        assert router.stats.deadline_misses == 1

    def test_deadline_bounds_the_retry_loop(self):
        stubs = [StubReplica(f"r{i}") for i in range(3)]
        for stub in stubs:
            stub.fail.extend([True] * 5)
        router = ReplicaRouter(
            stubs, deadline_s=0.01, max_retries=3, retry_backoff_s=0.02
        )
        [outcome] = router.route_priced([(0.0, make_request())], 0.0)
        # the first backoff (0.02s) blows the 0.01s budget: deadline, not
        # error — and no further attempts burned
        assert outcome.response.status == "deadline"
        assert router.stats.dispatch_failures == 1

    def test_hedge_fires_on_projected_wait_and_wins(self):
        stubs = [StubReplica("a", seconds=1.0), StubReplica("b", seconds=1.0)]
        router = ReplicaRouter(stubs, hedge_after_s=0.1)
        req = make_request(0)
        outcomes = router.route_priced(
            [(0.0, make_request(0)), (0.0, make_request(1))], 0.0
        )
        # first request starts immediately (no hedge); the second's
        # projected wait is 1.0s > 0.1s, so it hedges onto the idle
        # replica and the hedge finishes first
        assert outcomes[0].hedged is False
        assert outcomes[1].hedged is True
        assert outcomes[1].replica != outcomes[0].replica
        assert outcomes[1].finish < outcomes[0].finish + 1.0
        assert router.stats.hedges == 1
        assert router.stats.hedge_wins == 1
        assert router.stats.completed_hedge == 1
        assert req.hw is not None  # silence unused warning

    def test_crash_fault_ejects_and_fails_over(self):
        router, _ = stub_router(3, max_retries=2)
        preferred = router.preferred(make_request())
        with faults.inject("seed=0,replica.crash=1"):
            [outcome] = router.route_priced([(0.0, make_request())], 0.0)
        # the preferred replica crashed; the retry's target crashed too
        # (rate 1) until retries ran out — or a later replica served it.
        # With rate 1 every dispatch crashes: unrouted.
        assert outcome.response.status == "error"
        assert router.stats.replica_crashes == 3
        assert router.stats.ejections == 3
        assert router.health[preferred].state == EJECTED

    def test_slow_fault_stretches_service_and_degrades(self):
        stubs = [StubReplica("a", seconds=0.1), StubReplica("b", seconds=0.1)]
        router = ReplicaRouter(
            stubs, health_kwargs={"slow_after": 1}
        )
        with faults.inject("seed=0,replica.slow=1"):
            [outcome] = router.route_priced([(0.0, make_request())], 0.0)
        assert outcome.response.status == "ok"
        assert outcome.finish - outcome.start == pytest.approx(1.0)  # 10x
        assert router.stats.replica_slows == 1
        assert router.health[outcome.replica].state == DEGRADED

    def test_hang_fault_costs_the_timeout_then_fails_over(self):
        router, _ = stub_router(
            3, max_retries=2, dispatch_timeout_s=0.5, retry_backoff_s=0.0
        )
        preferred = router.preferred(make_request())
        with faults.inject("seed=0,replica.hang=1,hang.seconds=30"):
            [outcome] = router.route_priced([(0.0, make_request())], 0.0)
        # hang charged at min(hang_seconds, dispatch_timeout): attempts
        # advance 0.5s each, every replica hangs at rate 1 → unrouted
        assert outcome.response.status == "error"
        assert router.stats.replica_hangs == 3
        assert outcome.finish == pytest.approx(1.5)

    def test_drain_takes_replica_out_and_rejoin_readmits(self):
        router, stubs = stub_router(2)
        preferred = router.preferred(make_request())
        router.drain(preferred)
        [outcome] = router.route_priced([(0.0, make_request())], 0.0)
        assert outcome.replica != preferred
        assert router.health[preferred].state == DRAINING
        router.rejoin(preferred, now=1.0)
        # half-open: the next dispatch may trial it again
        assert router.health[preferred].half_open(1.0)
        [outcome2] = router.route_priced([(1.0, make_request(1))], 1.0)
        assert outcome2.response.status == "ok"

    def test_probe_drops_eject_without_traffic(self):
        router, _ = stub_router(
            2, probe_interval_s=0.1,
            health_kwargs={"eject_after": 3, "eject_for_s": 100.0},
        )
        with faults.inject("seed=0,probe.drop=1"):
            router.run_probes(1.0)
        assert router.stats.probes == 20
        assert router.stats.probe_drops == 20
        assert all(h.state == EJECTED for h in router.health.values())
        # with every replica ejected (cooling), requests are unrouted
        [outcome] = router.route_priced([(1.0, make_request())], 1.0)
        assert outcome.response.status == "error"
        assert router.stats.unrouted == 1

    def test_snapshot_and_health_summary_shapes(self):
        router, _ = stub_router(2)
        router.route_priced([(0.0, make_request())], 0.0)
        snap = router.snapshot()
        assert set(snap) == {"replicas", "router"}
        assert snap["router"]["completed_direct"] == 1
        summary = router.health_summary()
        assert summary["status"] == "ok"
        assert summary["serving"] == 2

    def test_constructor_validation(self):
        with pytest.raises(ServeError):
            ReplicaRouter([])
        with pytest.raises(ServeError):
            ReplicaRouter([StubReplica("a"), StubReplica("a")])
        with pytest.raises(ServeError):
            ReplicaRouter([StubReplica("a")], max_retries=-1)
        with pytest.raises(ServeError):
            ReplicaRouter([StubReplica("a")], deadline_s=0.0)
        with pytest.raises(ServeError):
            ReplicaRouter([StubReplica("a")], probe_interval_s=0.0)
        with pytest.raises(ServeError):
            stub_router(2)[0].drain("nope")


# ---------------------------------------------------------------------- #
# the live transport: router-backed app over a unix socket
# ---------------------------------------------------------------------- #
class TestRouterTransport:
    def _boot(self, tmp_path):
        engine = EvaluationEngine()
        replicas = [
            InProcessReplica(
                f"replica-{i}",
                PredictionService(engine=engine, selector=None),
            )
            for i in range(2)
        ]
        router = ReplicaRouter(replicas, seed=1)
        app = ServeApp(router, queue_limit=64, max_batch=8, max_wait_s=0.002)
        return AsyncServeServer(app, unix_path=tmp_path / "serve.sock"), router

    async def _http(self, sock: str, raw: bytes) -> tuple[int, dict]:
        reader, writer = await asyncio.open_unix_connection(sock)
        writer.write(raw)
        await writer.drain()
        data = await reader.read()
        writer.close()
        head, body = data.decode().split("\r\n\r\n", 1)
        return int(head.split()[1]), json.loads(body)

    def test_select_health_admin_roundtrip(self, tmp_path):
        async def scenario():
            server, router = self._boot(tmp_path)
            await server.start()
            sock = str(tmp_path / "serve.sock")
            try:
                body = json.dumps(
                    {
                        "id": "rt-1",
                        "layer": {"ic": 64, "oc": 64, "ih": 56, "iw": 56,
                                  "kh": 3, "kw": 3, "stride": 1},
                        "hw": {"vlen_bits": 512, "l2_mib": 1.0},
                    }
                ).encode()
                post = (
                    b"POST /v1/select HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                )
                s1, selected = await self._http(sock, post)
                s2, health = await self._http(
                    sock, b"GET /v1/health HTTP/1.1\r\n\r\n"
                )
                s3, drained = await self._http(
                    sock,
                    b"POST /v1/replicas/replica-0/drain HTTP/1.1\r\n\r\n",
                )
                s4, health2 = await self._http(
                    sock, b"GET /v1/health HTTP/1.1\r\n\r\n"
                )
                s5, rejoined = await self._http(
                    sock,
                    b"POST /v1/replicas/replica-0/rejoin HTTP/1.1\r\n\r\n",
                )
                s6, bad = await self._http(
                    sock,
                    b"POST /v1/replicas/nope/drain HTTP/1.1\r\n\r\n",
                )
                s7, stats = await self._http(
                    sock, b"GET /v1/stats HTTP/1.1\r\n\r\n"
                )
                return (
                    (s1, selected), (s2, health), (s3, drained),
                    (s4, health2), (s5, rejoined), (s6, bad), (s7, stats),
                )
            finally:
                await server.stop()

        (
            (s1, selected), (s2, health), (s3, drained),
            (s4, health2), (s5, rejoined), (s6, bad), (s7, stats),
        ) = asyncio.run(scenario())
        assert s1 == 200 and selected["status"] == "ok"
        assert selected["replica"].startswith("replica-")
        assert selected["attempts"] == 1
        assert s2 == 200 and health["status"] == "ok"
        assert health["serving"] == 2
        assert set(health["replicas"]) == {"replica-0", "replica-1"}
        assert s3 == 200 and drained["state"] == DRAINING
        assert s4 == 200 and health2["replicas"]["replica-0"] == DRAINING
        assert health2["serving"] == 1
        assert s5 == 200 and rejoined["state"] == EJECTED  # half-open gate
        assert s6 == 400 and "unknown replica" in bad["error"]
        assert s7 == 200 and stats["router"]["completed"] == 1
        assert stats["serving"]["requests"] == 1


# ---------------------------------------------------------------------- #
# the chaos acceptance run
# ---------------------------------------------------------------------- #
# Constants shared with the cross-process child script below; tuned so
# the seeded plan kills exactly one of the four replicas mid-trace
# (replica-2 crashes with ~36% of admitted traffic still to come).
CHAOS = dict(
    n=10_000, trace_seed=20240812, router_seed=7, fault_seed=4,
    crash_rate=0.0005, queue_limit=16, max_batch=64, max_wait_s=0.002,
    max_retries=3, retry_backoff_s=0.001, probe_interval_s=0.5,
)

_CHAOS_SCRIPT = """
import hashlib, json, sys
from repro import faults
from repro.engine.executor import EvaluationEngine
from repro.serve import (
    InProcessReplica, PredictionService, ReplicaRouter, TraceSpec,
    generate_trace, routed_replay,
)
from repro.nn.models.vgg16 import vgg16_conv_specs
from repro.simulator.hwconfig import HardwareConfig
from repro.algorithms.registry import layer_cycles

C = json.loads(sys.argv[1])
specs = vgg16_conv_specs()
hws = [HardwareConfig.paper2_rvv(v, l2) for v in (256, 512) for l2 in (1.0, 2.0)]
pool = [(s, hw) for hw in hws for s in specs]
mean_safe = sum(
    layer_cycles("im2col_gemm6", s, hw, fallback=True).seconds(hw.freq_ghz)
    for s, hw in pool
) / len(pool)
trace = generate_trace(
    TraceSpec(pattern="bursty", n_requests=C["n"], rate_rps=2.0 * 4 / mean_safe,
              seed=C["trace_seed"], burst_factor=4.0),
    pool,
)
engine = EvaluationEngine()
replicas = [
    InProcessReplica(f"replica-{i}", PredictionService(engine=engine, selector=None))
    for i in range(4)
]
router = ReplicaRouter(
    replicas, seed=C["router_seed"], max_retries=C["max_retries"],
    retry_backoff_s=C["retry_backoff_s"], probe_interval_s=C["probe_interval_s"],
    health_kwargs={"eject_for_s": 1e6},
)
with faults.inject(f"seed={C['fault_seed']},replica.crash={C['crash_rate']}"):
    result = routed_replay(
        router, trace, queue_limit=C["queue_limit"], slo_s=10.0,
        max_batch=C["max_batch"], max_wait_s=C["max_wait_s"],
    )
digest = hashlib.sha256()
for r in result.responses:
    digest.update(r.to_json().encode())
digest.update(json.dumps(result.shed_ids).encode())
digest.update(json.dumps(result.router_stats, sort_keys=True).encode())
print(digest.hexdigest())
"""


@pytest.mark.slow
@pytest.mark.chaos
class TestChaosKillOneOfFour:
    """ISSUE 10 acceptance: the endpoint survives a mid-trace replica kill."""

    def _run(self):
        specs = vgg16_conv_specs()
        pool = router_workload()
        safe_times = [
            layer_cycles("im2col_gemm6", s, hw, fallback=True).seconds(
                hw.freq_ghz
            )
            for s, hw in pool
        ]
        mean_safe = sum(safe_times) / len(safe_times)
        worst = max(safe_times)
        trace = generate_trace(
            TraceSpec(
                pattern="bursty", n_requests=CHAOS["n"],
                rate_rps=2.0 * 4 / mean_safe,
                seed=CHAOS["trace_seed"], burst_factor=4.0,
            ),
            pool,
        )
        # an admitted request waits behind at most queue_limit requests
        # (pending + replica backlog, each bounded by the slowest safe
        # cell) plus one batch window plus the full crash-retry backoff
        backoff_total = CHAOS["retry_backoff_s"] * (
            2.0 ** CHAOS["max_retries"] - 1.0
        )
        slo_s = (
            CHAOS["max_wait_s"]
            + (CHAOS["queue_limit"] + 1) * worst
            + backoff_total
        )
        engine = EvaluationEngine()
        replicas = [
            InProcessReplica(
                f"replica-{i}",
                PredictionService(engine=engine, selector=None),
            )
            for i in range(4)
        ]
        router = ReplicaRouter(
            replicas, seed=CHAOS["router_seed"],
            max_retries=CHAOS["max_retries"],
            retry_backoff_s=CHAOS["retry_backoff_s"],
            probe_interval_s=CHAOS["probe_interval_s"],
            health_kwargs={"eject_for_s": 1e6},  # a crash is a kill
        )
        spec = f"seed={CHAOS['fault_seed']},replica.crash={CHAOS['crash_rate']}"
        with faults.inject(spec):
            result = routed_replay(
                router, trace,
                queue_limit=CHAOS["queue_limit"], slo_s=slo_s,
                max_batch=CHAOS["max_batch"],
                max_wait_s=CHAOS["max_wait_s"],
            )
        assert len(specs) > 0
        return router, result, slo_s

    def test_kill_one_of_four_holds_slo_with_zero_errors(self):
        router, result, slo_s = self._run()
        stats = result.stats

        # -- the seeded kill: exactly one of four replicas died ---------
        states = {n: h.state for n, h in router.health.items()}
        dead = [n for n, s in states.items() if s == EJECTED]
        assert len(dead) == 1
        assert result.router_stats["replica_crashes"] == 1
        # it died mid-trace: it served traffic, and plenty came after
        last_served = max(
            i for i, o in enumerate(result.outcomes) if o.replica == dead[0]
        )
        assert last_served > 100
        assert len(result.responses) - last_served > 100

        # -- zero errored admitted requests -----------------------------
        assert all(r.status == "ok" for r in result.responses)

        # -- conservation: offered == admitted + shed; admitted
        #    partitions into the completion classes --------------------
        assert stats.offered == CHAOS["n"]
        assert stats.n_requests + stats.shed == CHAOS["n"]
        assert result.conserved()
        rs = result.router_stats
        assert rs["completed_failover"] > 0  # the dead shard failed over
        assert rs["failovers"] == rs["completed_failover"]
        assert rs["retries"] >= 1  # the crash itself forced a retry
        assert rs["ejections"] >= 1

        # -- admitted p99 within the derived SLO ------------------------
        assert stats.slo_s == slo_s
        assert stats.p99 <= slo_s
        assert all(
            r.queue_wait >= 0 and r.latency >= 0 for r in stats.records
        )

    def test_bit_identical_across_two_processes(self):
        digests = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", _CHAOS_SCRIPT, json.dumps(CHAOS)],
                capture_output=True, text=True, cwd=REPO,
                env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
                timeout=600,
            )
            assert proc.returncode == 0, proc.stderr
            digests.append(proc.stdout.strip())
        assert digests[0] == digests[1]
        assert len(digests[0]) == 64  # a real sha256, not empty output


# ---------------------------------------------------------------------- #
# routed replay parity: responses remain bit-identical to the engine
# ---------------------------------------------------------------------- #
@pytest.mark.slow
def test_routed_responses_match_direct_evaluation():
    pool = router_workload()[:12]
    engine = EvaluationEngine()
    replicas = [
        InProcessReplica(
            f"replica-{i}", PredictionService(engine=engine, selector=None)
        )
        for i in range(3)
    ]
    router = ReplicaRouter(replicas, seed=7)
    trace = generate_trace(
        TraceSpec(pattern="uniform", n_requests=200, rate_rps=50.0, seed=1),
        pool,
    )
    result = routed_replay(router, trace, max_batch=16, max_wait_s=0.002)
    assert len(result.responses) == 200
    by_id = {t.request.id: t.request for t in trace}
    memo = {}
    for response in result.responses:
        assert response.status == "ok"
        request = by_id[response.id]
        key = (response.algorithm, request.spec, request.hw)
        if key not in memo:
            record = layer_cycles(
                response.algorithm, request.spec, request.hw, fallback=True
            )
            memo[key] = (record.cycles, record.seconds(request.hw.freq_ghz))
        assert (response.cycles, response.seconds) == memo[key]
