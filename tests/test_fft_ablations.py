"""Tests for the FFT algorithm and the ablation studies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import get_algorithm
from repro.algorithms.fft import _fft_shape
from repro.errors import NotApplicableError
from repro.experiments.cli import run_experiment
from repro.isa import VectorMachine
from repro.nn.layer import ConvSpec
from repro.nn.reference import conv2d_reference


def random_case(rng, **dims):
    spec = ConvSpec(**dims)
    x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
    w = (0.3 * rng.standard_normal(
        (spec.oc, spec.ic, spec.kh, spec.kw)
    )).astype(np.float32)
    return spec, x, w


class TestFftCorrectness:
    @pytest.mark.parametrize(
        "dims",
        [
            dict(ic=3, oc=4, ih=12, iw=10, kh=3, kw=3),
            dict(ic=2, oc=3, ih=14, iw=14, kh=7, kw=7),
            dict(ic=2, oc=2, ih=16, iw=16, kh=11, kw=11, pad=5),
            dict(ic=4, oc=2, ih=9, iw=9, kh=1, kw=1),
            dict(ic=1, oc=1, ih=8, iw=8, kh=5, kw=5, pad=0),
        ],
    )
    def test_matches_reference(self, rng, dims):
        spec, x, w = random_case(rng, **dims)
        out = get_algorithm("fft").run(spec, x, w)
        np.testing.assert_allclose(
            out, conv2d_reference(spec, x, w), atol=1e-4
        )

    def test_stride2_not_applicable(self, rng):
        spec, x, w = random_case(rng, ic=2, oc=2, ih=8, iw=8, kh=3, kw=3,
                                 stride=2)
        assert not get_algorithm("fft").applicable(spec)
        with pytest.raises(NotApplicableError):
            get_algorithm("fft").run(spec, x, w)

    def test_vectorized_path(self, rng):
        spec, x, w = random_case(rng, ic=2, oc=3, ih=10, iw=10, kh=3, kw=3)
        machine = VectorMachine(512, trace=False)
        out = get_algorithm("fft").run_vectorized(spec, x, w, machine)
        np.testing.assert_allclose(
            out, conv2d_reference(spec, x, w), atol=1e-4
        )
        assert machine.trace.stats.vector_instrs > 0

    def test_fft_shape_covers_linear_convolution(self):
        spec = ConvSpec(ic=1, oc=1, ih=13, iw=9, kh=5, kw=5)
        fh, fw = _fft_shape(spec)
        assert fh >= spec.ih + 2 * spec.pad + spec.kh - 1
        assert fw >= spec.iw + 2 * spec.pad + spec.kw - 1
        assert fh % 8 == 0 and fw % 8 == 0

    @given(
        ih=st.integers(6, 16), iw=st.integers(6, 16),
        k=st.sampled_from([1, 3, 5]), seed=st.integers(0, 999),
    )
    @settings(max_examples=20, deadline=None)
    def test_fft_property(self, ih, iw, k, seed):
        rng = np.random.default_rng(seed)
        spec, x, w = random_case(rng, ic=2, oc=2, ih=ih, iw=iw, kh=k, kw=k)
        np.testing.assert_allclose(
            get_algorithm("fft").run(spec, x, w),
            conv2d_reference(spec, x, w),
            atol=2e-4,
        )


class TestFftAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ablation-fft")

    def test_fft_loses_at_cnn_kernel_sizes(self, result):
        """The paper's exclusion rationale: FFT is far slower at 1x1-5x5."""
        for k in (1, 3, 5):
            assert result.data["winners"][k] != "fft"
            c = result.data["cycles"]
            assert c[(k, "fft")] > 3 * c[(k, "im2col_gemm3")]

    def test_fft_wins_eventually(self, result):
        """...but FFT does take over for large kernels (Zlateski et al.)."""
        crossover = result.data["fft_crossover"]
        assert crossover is not None and crossover >= 7

    def test_winograd_only_at_3(self, result):
        c = result.data["cycles"]
        assert c[(3, "winograd")] is not None
        assert c[(5, "winograd")] is None


class TestModelAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ablation-model")

    def test_full_model_holds_all_anchors(self, result):
        full = result.data["full model"]
        assert full["gemm6_wins_skinny"]
        assert full["yolo_layers_gaining_64mb"] >= 10
        assert full["paper1_vl_scaling"] > 1.8

    def test_scalar_exposure_carries_gemm6_win(self, result):
        assert not result.data["no scalar exposure"]["gemm6_wins_skinny"]

    def test_residency_carries_cache_benefit(self, result):
        assert result.data["no producer residency"]["yolo_layers_gaining_64mb"] <= 3

    def test_deadtime_carries_decoupled_vl_scaling(self, result):
        assert result.data["no decoupled deadtime"]["paper1_vl_scaling"] < 1.3

    def test_ablations_are_orthogonal(self, result):
        """Each toggle breaks its own anchor and leaves the others intact."""
        ns = result.data["no scalar exposure"]
        assert ns["yolo_layers_gaining_64mb"] >= 10
        assert ns["paper1_vl_scaling"] > 1.8
        nr = result.data["no producer residency"]
        assert nr["gemm6_wins_skinny"] and nr["paper1_vl_scaling"] > 1.8
        nd = result.data["no decoupled deadtime"]
        assert nd["gemm6_wins_skinny"] and nd["yolo_layers_gaining_64mb"] >= 10
