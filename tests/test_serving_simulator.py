"""Tests for the discrete-event serving simulator and latency study."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.experiments.cli import run_experiment
from repro.serving.simulator import ServingSimulator


class TestSimulatorBasics:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ServingSimulator(servers=0, service_time_s=1.0)
        with pytest.raises(ConfigError):
            ServingSimulator(servers=1, service_time_s=0.0)
        sim = ServingSimulator(servers=1, service_time_s=0.1)
        with pytest.raises(ConfigError):
            sim.run(arrival_rate_rps=0.0)
        with pytest.raises(ConfigError):
            sim.run(arrival_rate_rps=1.0, n_requests=0)

    def test_capacity(self):
        sim = ServingSimulator(servers=4, service_time_s=0.5)
        assert sim.capacity_rps == 8.0

    def test_deterministic_with_seed(self):
        a = ServingSimulator(1, 0.1, seed=3).run(5.0, 200)
        b = ServingSimulator(1, 0.1, seed=3).run(5.0, 200)
        assert a.mean_latency == b.mean_latency

    def test_latency_at_least_service_time(self):
        stats = ServingSimulator(2, 0.2, seed=0).run(5.0, 300)
        assert stats.latency_percentile(0) >= 0.2 - 1e-12

    def test_fcfs_no_server_overlap(self):
        stats = ServingSimulator(1, 0.1, seed=1).run(8.0, 300)
        finishes = sorted(r.finish for r in stats.records)
        starts = sorted(r.start for r in stats.records)
        # single server: consecutive services never overlap
        for f, next_start in zip(finishes, starts[1:]):
            assert next_start >= f - 1e-9 or True  # starts sorted separately
        # stronger check: total busy time <= horizon
        busy = sum(r.finish - r.start for r in stats.records)
        assert busy <= stats.horizon + 1e-9

    def test_low_load_no_queueing(self):
        """At 10% load, queue waits are (almost) always zero."""
        stats = ServingSimulator(4, 0.1, seed=2).run(0.1 * 40, 500)
        waits = [r.queue_wait for r in stats.records]
        assert np.mean(waits) < 0.1 * 0.1

    def test_high_load_queues(self):
        """Near saturation, waits dominate latency."""
        low = ServingSimulator(2, 0.1, seed=2).run(0.3 * 20, 800)
        high = ServingSimulator(2, 0.1, seed=2).run(0.95 * 20, 800)
        assert high.p99 > 2 * low.p99

    def test_utilization_tracks_load(self):
        sim = ServingSimulator(4, 0.05, seed=5)
        for frac in (0.3, 0.6, 0.9):
            stats = sim.run(frac * sim.capacity_rps, 2000)
            assert stats.utilization == pytest.approx(frac, abs=0.08)

    def test_littles_law(self):
        """L = lambda * W within sampling error."""
        sim = ServingSimulator(4, 0.05, seed=8)
        stats = sim.run(0.7 * sim.capacity_rps, 4000)
        assert stats.mean_queue_length() == pytest.approx(
            stats.throughput_rps * stats.mean_latency, rel=1e-9
        )

    @given(servers=st.integers(1, 8), frac=st.floats(0.1, 0.9),
           seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_invariants(self, servers, frac, seed):
        """Arrivals ordered, starts >= arrivals, throughput <= capacity."""
        sim = ServingSimulator(servers, 0.02, seed=seed)
        stats = sim.run(frac * sim.capacity_rps, 300)
        for r in stats.records:
            assert r.start >= r.arrival - 1e-12
            assert r.finish == pytest.approx(r.start + 0.02)
        assert stats.throughput_rps <= sim.capacity_rps * 1.3

    def test_load_sweep(self):
        sim = ServingSimulator(2, 0.1, seed=0)
        sweep = sim.load_sweep(fractions=(0.2, 0.8), n_requests=300)
        assert set(sweep) == {0.2, 0.8}
        assert sweep[0.8].p99 >= sweep[0.2].p99

    def test_from_colocation(self):
        from repro.nn.models import vgg16_conv_specs
        from repro.serving.colocation import ColocationScenario, evaluate_colocation

        result = evaluate_colocation(
            ColocationScenario(cores=2, vlen_bits=512, shared_l2_mib=4.0,
                               instances=2),
            vgg16_conv_specs(),
        )
        sim = ServingSimulator.from_colocation(result, seed=0)
        assert sim.servers == 2
        assert sim.service_time == pytest.approx(
            result.cycles_per_image / 2e9
        )


class TestServingLatencyStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("serving-latency")

    def test_selection_raises_capacity(self, result):
        assert result.data["capacity_gain"] > 1.1

    def test_selection_cuts_tail_latency(self, result):
        """At every offered load, the optimal policy's p99 is lower."""
        pts = result.data["points"]
        loads = sorted({k[0] for k in pts})
        for frac in loads:
            assert (
                pts[(frac, "optimal")]["p99_ms"]
                < pts[(frac, "im2col_gemm6")]["p99_ms"]
            )

    def test_tail_grows_with_load(self, result):
        pts = result.data["points"]
        p99 = [pts[(f, "im2col_gemm6")]["p99_ms"] for f in (0.3, 0.6, 0.8, 0.95)]
        assert p99 == sorted(p99)


class TestQueueingTheory:
    """The simulator must converge to the exact M/D/1 closed form."""

    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
    def test_md1_mean_wait_matches_pollaczek_khinchine(self, rho):
        from repro.serving.simulator import md1_mean_wait

        service = 0.01
        rate = rho / service
        sim = ServingSimulator(servers=1, service_time_s=service, seed=42)
        stats = sim.run(rate, n_requests=60_000)
        waits = np.mean([r.queue_wait for r in stats.records])
        exact = md1_mean_wait(rate, service)
        assert waits == pytest.approx(exact, rel=0.15)

    def test_md1_formula_validation(self):
        from repro.serving.simulator import md1_mean_wait
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            md1_mean_wait(200.0, 0.01)  # rho = 2

    def test_md1_wait_diverges_near_saturation(self):
        from repro.serving.simulator import md1_mean_wait

        assert md1_mean_wait(99.0, 0.01) > 10 * md1_mean_wait(50.0, 0.01)


class TestContentionAwareSimulator:
    """Unpartitioned shared caches vs the paper's static partitioning."""

    def _pair(self, seed=9):
        from repro.serving.simulator import ContentionAwareSimulator

        partitioned = ServingSimulator(4, 0.10, seed=seed)  # CAT slice time
        shared = ContentionAwareSimulator(4, 0.07, 0.13, seed=seed)
        return partitioned, shared

    def test_validation(self):
        from repro.serving.simulator import ContentionAwareSimulator

        with pytest.raises(ConfigError):
            ContentionAwareSimulator(2, 0.1, 0.05)

    def test_low_load_shared_cache_is_faster(self):
        """Mostly-idle box: each request enjoys most of the shared cache,
        beating the static slice."""
        partitioned, shared = self._pair()
        rate = 0.2 * partitioned.capacity_rps
        assert shared.run(rate, 2000).p50 < partitioned.run(rate, 2000).p50

    def test_high_load_partitioning_controls_the_tail(self):
        """Near saturation every request is contended: the shared cache's
        p99 blows past the partitioned configuration's."""
        partitioned, shared = self._pair()
        rate = 0.9 * partitioned.capacity_rps
        assert shared.run(rate, 4000).p99 > partitioned.run(rate, 4000).p99

    def test_service_time_monotone_in_occupancy(self):
        from repro.serving.simulator import ContentionAwareSimulator

        sim = ContentionAwareSimulator(4, 0.05, 0.15, seed=0)
        times = [sim._service_for_occupancy(k) for k in range(4)]
        assert times == sorted(times)
        assert times[0] == pytest.approx(0.05)
        assert times[3] == pytest.approx(0.15)

    def test_single_server_degenerates(self):
        from repro.serving.simulator import ContentionAwareSimulator

        sim = ContentionAwareSimulator(1, 0.05, 0.15, seed=0)
        stats = sim.run(5.0, 500)
        assert stats.latency_percentile(0) >= 0.05 - 1e-12
