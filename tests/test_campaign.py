"""Tests for the campaign runner and its persistence layer."""

import json

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.campaign import (
    FIELDS,
    Campaign,
    paper2_campaign,
    run_campaign,
)
from repro.experiments.cli import main
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig


@pytest.fixture(scope="module")
def small_campaign():
    specs = [
        ConvSpec(ic=8, oc=16, ih=16, iw=16, kh=3, kw=3, index=1),
        ConvSpec(ic=16, oc=8, ih=16, iw=16, kh=1, kw=1, index=2),
    ]
    configs = [HardwareConfig.paper2_rvv(vl, 1.0) for vl in (512, 2048)]
    return run_campaign({"toy": specs}, configs, name="toy")


class TestRunCampaign:
    def test_record_count(self, small_campaign):
        # 2 layers x 2 configs x 4 algorithms
        assert len(small_campaign) == 16

    def test_schema(self, small_campaign):
        for r in small_campaign.records:
            assert set(r) == set(FIELDS)

    def test_inapplicable_marked(self, small_campaign):
        rows = small_campaign.filter(layer=2, algorithm="winograd")
        assert rows and all(not r["applicable"] for r in rows)
        assert all(np.isinf(r["cycles"]) for r in rows)

    def test_filter_unknown_field(self, small_campaign):
        with pytest.raises(ExperimentError, match="unknown campaign fields"):
            small_campaign.filter(bogus=1)

    def test_best_per_layer(self, small_campaign):
        best = small_campaign.best_per_layer("toy", 512, 1.0)
        assert set(best) == {1, 2}
        assert best[2] != "winograd"

    def test_total_cycles(self, small_campaign):
        total = small_campaign.total_cycles("toy", "direct", 512, 1.0)
        rows = small_campaign.filter(algorithm="direct", vlen_bits=512)
        assert total == pytest.approx(sum(r["cycles"] for r in rows))

    def test_total_cycles_missing(self, small_campaign):
        with pytest.raises(ExperimentError, match="no records"):
            small_campaign.total_cycles("toy", "direct", 4096, 1.0)

    def test_progress_callback(self):
        messages = []
        run_campaign(
            {"t": [ConvSpec(ic=4, oc=4, ih=8, iw=8, index=1)]},
            [HardwareConfig.paper2_rvv(512, 1.0)],
            progress=messages.append,
        )
        assert messages and "t:" in messages[0]


class TestPersistence:
    def test_json_roundtrip(self, small_campaign, tmp_path):
        path = small_campaign.save(tmp_path / "c.json")
        loaded = Campaign.load(path)
        assert loaded.name == "toy"
        assert loaded.records == small_campaign.records

    def test_load_rejects_missing_fields(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "fields": ["workload"],
                                   "records": []}))
        with pytest.raises(ExperimentError, match="missing fields"):
            Campaign.load(bad)

    def test_csv_export(self, small_campaign, tmp_path):
        path = small_campaign.write_csv(tmp_path / "c.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == ",".join(FIELDS)
        assert len(lines) == 1 + len(small_campaign)


class TestPaper2Campaign:
    def test_full_grid(self):
        c = paper2_campaign()
        assert len(c) == 28 * 16 * 4
        # the campaign's winners agree with the registry's best_algorithm
        winners = c.best_per_layer("vgg16", 512, 1.0)
        assert winners[1] == "direct" and winners[5] == "im2col_gemm6"


class TestCliOut:
    def test_out_writes_csv(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        csv = (tmp_path / "table1.csv").read_text()
        assert csv.startswith("model,layer")
