"""Tests for schedule variants, the registry hook, and the seeded search."""

import pytest

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.engine import EvaluationEngine
from repro.errors import AlgorithmError, ScheduleError
from repro.nn.layer import ConvSpec
from repro.schedule.search import (
    SearchBounds,
    cell_candidates,
    search_schedules,
)
from repro.schedule.variants import materialize, parse_variant, variant_name
from repro.selection.dataset import build_searched_dataset
from repro.simulator.hwconfig import HardwareConfig

SPECS = [
    ConvSpec(ic=64, oc=64, ih=56, iw=56, kh=3, kw=3, index=1),
    ConvSpec(ic=128, oc=128, ih=28, iw=28, kh=3, kw=3, index=2),
]
CONFIGS = [
    HardwareConfig.paper2_rvv(512, 1.0),
    HardwareConfig.paper2_rvv(2048, 16.0),
]


def run_search(seed=0, bounds=None):
    bounds = bounds or SearchBounds(seed=seed)
    return search_schedules(SPECS, CONFIGS, engine=EvaluationEngine(), bounds=bounds)


class TestVariantNames:
    def test_canonical_key_order(self):
        name = variant_name("im2col_gemm6", {"bk": 128, "bm": 16, "bn": 512})
        assert name == "im2col_gemm6@bm=16,bn=512,bk=128"

    def test_bare_name_for_empty_params(self):
        assert variant_name("winograd", {}) == "winograd"

    def test_parse_round_trip(self):
        name = "im2col_gemm6@bm=32,bn=1024,bk=256"
        variant = parse_variant(name)
        assert variant.base == "im2col_gemm6"
        assert variant.as_params() == {"bm": 32, "bn": 1024, "bk": 256}
        assert variant.name == name

    def test_parse_normalizes_key_order(self):
        assert (
            parse_variant("im2col_gemm6@bk=256,bm=32,bn=1024").name
            == "im2col_gemm6@bm=32,bn=1024,bk=256"
        )

    def test_parse_bare_base(self):
        variant = parse_variant("direct")
        assert variant.is_default_named
        assert variant.name == "direct"

    @pytest.mark.parametrize(
        "bad",
        [
            "nope@u=1",  # unknown base
            "direct@",  # empty suffix
            "direct@uw",  # not key=value
            "direct@uw=x",  # non-integer value
            "direct@uw=8,uw=16",  # duplicate knob
            "direct@u=8",  # wrong knob name
        ],
    )
    def test_malformed_names_rejected(self, bad):
        with pytest.raises(ScheduleError):
            parse_variant(bad)


class TestMaterialize:
    def test_materialized_identity(self):
        algo = materialize("im2col_gemm3@u=24")
        assert algo.name == "im2col_gemm3@u=24"
        assert "u=24" in algo.label

    def test_registry_hook_and_cache(self):
        first = get_algorithm("direct@uw=8")
        again = get_algorithm("direct@uw=8")
        assert first is again  # registered on first use
        assert first.name == "direct@uw=8"

    def test_registry_still_rejects_unknown_bases(self):
        with pytest.raises(AlgorithmError):
            get_algorithm("not_an_algorithm")
        with pytest.raises(ScheduleError):
            get_algorithm("not_an_algorithm@u=4")

    def test_default_params_match_menu_schedule(self):
        # a default-parameter variant produces the same analytical phases
        # as the bare menu entry (only the name differs)
        spec, hw = SPECS[0], CONFIGS[0]
        menu = get_algorithm("im2col_gemm3").schedule(spec, hw)
        variant = get_algorithm("im2col_gemm3@u=16").schedule(spec, hw)
        assert menu == variant


class TestCellCandidates:
    def test_menu_is_prefix(self):
        menu, names = cell_candidates(SPECS[0], CONFIGS[0], SearchBounds())
        assert names[: len(menu)] == menu
        for name in menu:
            assert "@" in name or name in ALGORITHM_NAMES

    def test_inapplicable_algorithms_skipped(self):
        spec_1x1 = ConvSpec(ic=256, oc=64, ih=28, iw=28, kh=1, kw=1, index=7)
        menu, _ = cell_candidates(spec_1x1, CONFIGS[0], SearchBounds())
        assert "winograd" not in menu  # winograd is 3x3-only

    def test_subsample_is_seeded_and_keeps_menu(self):
        bounds = SearchBounds(max_candidates_per_cell=6, seed=7)
        menu, first = cell_candidates(SPECS[0], CONFIGS[0], bounds)
        _, second = cell_candidates(SPECS[0], CONFIGS[0], bounds)
        assert first == second
        assert len(first) <= 6
        assert first[: len(menu)] == menu

    def test_subsample_depends_on_seed_only_over_cap(self):
        small = SearchBounds(max_candidates_per_cell=6, seed=1)
        other = SearchBounds(max_candidates_per_cell=6, seed=2)
        _, a = cell_candidates(SPECS[0], CONFIGS[0], small)
        _, b = cell_candidates(SPECS[0], CONFIGS[0], other)
        # both deterministic; they may or may not differ, but the exhaustive
        # (uncapped) enumeration must be seed-independent
        _, full1 = cell_candidates(SPECS[0], CONFIGS[0], SearchBounds(seed=1))
        _, full2 = cell_candidates(SPECS[0], CONFIGS[0], SearchBounds(seed=2))
        assert full1 == full2
        assert len(a) == len(b)


class TestSearch:
    def test_deterministic_given_seed(self):
        assert run_search(seed=3).cells == run_search(seed=3).cells

    def test_match_or_beat_every_cell(self):
        report = run_search()
        assert report.cells
        assert report.min_ratio >= 1.0
        for cell in report.cells:
            assert cell.best_cycles <= cell.menu_cycles

    def test_ties_keep_the_menu_name(self):
        report = run_search()
        for cell in report.cells:
            if not cell.improved:
                assert cell.best == cell.menu_best
                assert "@" not in cell.best

    def test_winners_are_parseable(self):
        report = run_search()
        for name in report.winner_names():
            parse_variant(name)  # must not raise

    def test_menu_only_bounds_never_improve(self):
        bounds = SearchBounds(algorithms=("winograd",))
        report = search_schedules(
            SPECS, CONFIGS, engine=EvaluationEngine(), bounds=bounds
        )
        # winograd has no knobs: the searched best is always the menu
        assert all(c.best == "winograd" for c in report.cells)
        assert report.beat_fraction == 0.0
        assert report.geomean_ratio == 1.0

    def test_report_rows_align_with_cells(self):
        report = run_search()
        rows = report.rows()
        assert len(rows) == len(report.cells)
        assert rows[0]["layer"] == report.cells[0].layer
        assert rows[0]["ratio"] >= 1.0


class TestSearchedDataset:
    def test_widened_columns_and_lookup(self):
        dataset = build_searched_dataset(
            SPECS, CONFIGS, engine=EvaluationEngine()
        )
        assert dataset.algorithm_names[: len(ALGORITHM_NAMES)] == ALGORITHM_NAMES
        assert dataset.cycles.shape[1] == len(dataset.algorithm_names)
        for extra in dataset.algorithm_names[len(ALGORITHM_NAMES) :]:
            assert "@" in extra
            parse_variant(extra)
        # per-row lookup works for widened columns too, and a widened
        # label can never be slower than the menu's best on its row
        for row in range(len(dataset)):
            label = str(dataset.y[row])
            menu_best = min(
                dataset.cycles_for(row, name) for name in ALGORITHM_NAMES
            )
            assert dataset.cycles_for(row, label) <= menu_best
