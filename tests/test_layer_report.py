"""Tests for the layer-report introspection tool."""

import pytest

from repro.experiments.layer_report import report, run
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig


class TestLayerReport:
    def test_default_run(self):
        r = run()
        assert "conv9" in r.table.title
        assert set(r.data["cycles"]) == {
            "direct", "im2col_gemm3", "im2col_gemm6", "winograd"
        }

    def test_totals_match_registry(self):
        from repro.algorithms.registry import layer_cycles
        from repro.experiments.configs import workload

        spec = workload("vgg16")[8]
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        r = report(spec, hw)
        for name, total in r.data["cycles"].items():
            assert total == pytest.approx(
                layer_cycles(name, spec, hw, fallback=False).cycles
            )

    def test_inapplicable_marked(self):
        spec = ConvSpec(ic=8, oc=8, ih=16, iw=16, kh=1, kw=1, index=1)
        r = report(spec, HardwareConfig.paper2_rvv(512, 1.0))
        assert "winograd" not in r.data["cycles"]
        assert any("not applicable" in " ".join(row) for row in r.table.rows)

    def test_energy_column_present(self):
        r = run("yolov3:1", vlen_bits=1024, l2_mib=4.0)
        assert all(e > 0 for e in r.data["energy_j"].values())

    def test_layer_selector_parsing(self):
        r = run("vgg16:3")
        assert "conv3" in r.table.title
