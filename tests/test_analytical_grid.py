"""Tensorized analytical-grid evaluation: exact parity + engine fast path.

The contract under test (ISSUE 8 / docs/PERF.md): evaluating a columnar
``PhaseTable`` through :func:`repro.simulator.analytical.grid.
evaluate_phase_table` — with either registered backend — produces
``LayerCycles``/``PhaseCycles`` records **bit-identical** to the per-cell
:class:`AnalyticalTimingModel`, over the paper's full 448-point grid; and
the :class:`EvaluationEngine` routes cold serial/small batches through
that path without changing a single output float.
"""

from __future__ import annotations

import pytest

from repro import faults, obs
from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.engine import EvalTask, EvaluationEngine, MemoCache
from repro.errors import SimulationError
from repro.nn.layer import ConvSpec
from repro.simulator._compiled import HAVE_NUMBA
from repro.simulator.analytical import grid
from repro.simulator.analytical.calibration import Calibration
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA,
    reason="Numba not installed (the [compiled] extra); CI's compiled "
           "job runs these",
)


def records_equal(a, b) -> bool:
    """Exact (bit-identical) equality of two LayerCycles records."""
    return a.algorithm == b.algorithm and [
        p.__dict__ for p in a.phases
    ] == [p.__dict__ for p in b.phases]


@pytest.fixture(scope="module")
def paper_grid_cells():
    """Every applicable (algorithm, schedule, hw) cell of the 448-point
    grid, with its per-cell reference record."""
    from repro.experiments.configs import workload

    specs = workload("vgg16") + workload("yolov3")
    configs = [
        HardwareConfig.paper2_rvv(v, l2)
        for v in (512, 1024, 2048, 4096)
        for l2 in (1.0, 64.0)
    ]
    cells, expected = [], []
    for hw in configs:
        for spec in specs:
            for name in ALGORITHM_NAMES:
                algo = get_algorithm(name)
                if not algo.applicable(spec):
                    continue
                phases = algo.schedule(spec, hw)
                cells.append((algo.name, phases, hw))
                expected.append(
                    AnalyticalTimingModel(hw).evaluate(algo.name, phases)
                )
    return cells, expected


@pytest.fixture
def _restore_grid_default():
    yield
    grid.configure_grid(backend="auto")


# --------------------------------------------------------------------- #
# bit-exact parity over the paper grid
# --------------------------------------------------------------------- #
class TestGridParity:
    def assert_full_parity(self, cells, expected, backend):
        table = grid.PhaseTable.from_cells(cells)
        got = grid.evaluate_phase_table(table, backend=backend)
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert records_equal(g, e)
            assert g.cycles == e.cycles
            assert g.dram_bytes == e.dram_bytes
            for gp, ep in zip(g.phases, e.phases):
                assert gp.cycles == ep.cycles
                assert gp.bound == ep.bound

    def test_numpy_backend_bit_identical_on_paper_grid(self, paper_grid_cells):
        cells, expected = paper_grid_cells
        assert len(cells) > 400  # the full grid, not a sample
        self.assert_full_parity(cells, expected, "numpy")

    @needs_numba
    def test_compiled_backend_bit_identical_on_paper_grid(
        self, paper_grid_cells
    ):
        cells, expected = paper_grid_cells
        self.assert_full_parity(cells, expected, "compiled")

    def test_compiled_kernel_algorithm_matches_numpy_uncompiled(
        self, paper_grid_cells
    ):
        """The kernel *algorithm* is validated on every machine: without
        Numba the undecorated Python function runs (slowly) and must
        produce the numpy backend's columns bit for bit."""
        cells, _ = paper_grid_cells
        table = grid.PhaseTable.from_cells(cells[:120])
        rows_np = grid._evaluate_rows_numpy(table)
        rows_c = grid._evaluate_rows_compiled(table)
        for a, b, name in zip(rows_np, rows_c, rows_np._fields):
            assert (a == b).all(), f"column {name} diverged"

    def test_calibration_column_parity(self):
        """Non-default and per-cell calibrations flow through the table."""
        spec = ConvSpec(ic=16, oc=32, ih=28, iw=28, kh=3, kw=3, index=2)
        hw = HardwareConfig.paper1_riscvv(1024, 4.0)  # DECOUPLED style
        cal = Calibration(
            nonunit_penalty=2.0, latency_exposure=0.9,
            enable_scalar_exposure=False, phase_startup=123.0,
        )
        algo = get_algorithm("im2col_gemm6")
        phases = algo.schedule(spec, hw)
        expected = AnalyticalTimingModel(hw, cal).evaluate(algo.name, phases)
        # table-wide calibration
        [got] = grid.evaluate_cells([(algo.name, phases, hw)], calibration=cal)
        assert records_equal(got, expected)
        # per-cell override beats the table-wide default
        [got2] = grid.evaluate_cells([(algo.name, phases, hw, cal)])
        assert records_equal(got2, expected)

    def test_empty_and_streamless_cells(self):
        assert grid.evaluate_cells([]) == []
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        from repro.simulator.analytical.phases import Phase

        phases = [Phase("bare", scalar_ops=100.0)]  # no streams at all
        expected = AnalyticalTimingModel(hw).evaluate("x", phases)
        [got] = grid.evaluate_cells([("x", phases, hw)])
        assert got.cycles == expected.cycles
        assert got.dram_bytes == expected.dram_bytes


# --------------------------------------------------------------------- #
# backend registry + process default
# --------------------------------------------------------------------- #
class TestGridBackendRegistry:
    def test_numpy_always_registered(self):
        assert "numpy" in grid.available_grid_backends()
        assert grid.resolve_grid_backend("numpy").name == "numpy"

    def test_auto_resolves_to_a_registered_backend(self):
        assert grid.resolve_grid_backend("auto").name in (
            grid.available_grid_backends()
        )
        assert grid.resolve_grid_backend(None).name in (
            grid.available_grid_backends()
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown grid backend"):
            grid.resolve_grid_backend("warp")

    @pytest.mark.skipif(HAVE_NUMBA, reason="only without Numba")
    def test_compiled_without_numba_names_the_extra(self):
        with pytest.raises(SimulationError, match=r"\[compiled\] extra"):
            grid.resolve_grid_backend("compiled")

    @needs_numba
    def test_compiled_registered_and_preferred_by_auto(self):
        assert "compiled" in grid.available_grid_backends()
        assert grid.resolve_grid_backend("auto").name == "compiled"

    def test_configure_grid_sets_process_default(self, _restore_grid_default):
        assert grid.grid_defaults() == "auto"
        assert grid.configure_grid(backend="numpy") == "numpy"
        assert grid.grid_defaults() == "numpy"
        assert grid.configure_grid() == "numpy"  # None leaves it unchanged
        with pytest.raises(SimulationError, match="unknown grid backend"):
            grid.configure_grid(backend="warp")
        if not HAVE_NUMBA:  # eager validation: fails at config time
            with pytest.raises(SimulationError, match=r"\[compiled\] extra"):
                grid.configure_grid(backend="compiled")

    def test_grid_backend_counter_recorded(self):
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        spec = ConvSpec(ic=8, oc=8, ih=16, iw=16, index=1)
        algo = get_algorithm("direct")
        rec = obs.enable()
        try:
            grid.evaluate_cells(
                [(algo.name, algo.schedule(spec, hw), hw)], backend="numpy"
            )
            assert rec.counters.get("analytical.grid_backend.numpy") == 1
        finally:
            obs.disable()


# --------------------------------------------------------------------- #
# engine fast path
# --------------------------------------------------------------------- #
class TestEngineGridFastPath:
    @pytest.fixture
    def tasks(self):
        hw = HardwareConfig.paper2_rvv(512, 1.0)
        specs = [ConvSpec(ic=8, oc=8, ih=16, iw=16, index=i) for i in range(4)]
        return [
            EvalTask(name, s, hw) for s in specs for name in ALGORITHM_NAMES
        ]

    def test_cold_serial_batch_routes_through_grid(self, tasks):
        rec = obs.enable()
        try:
            records = EvaluationEngine().evaluate_many(tasks)
            assert (rec.counters.get("engine.grid_cells") or 0) > 0
            names = {s.name for s in rec.spans}
            assert "engine.grid" in names and "engine.point" in names
        finally:
            obs.disable()
        expected = EvaluationEngine(grid_backend="percell").evaluate_many(tasks)
        for got, want in zip(records, expected):
            assert records_equal(got, want)

    def test_small_parallel_batch_skips_pool_and_counts(self, tasks):
        small = tasks[:6]
        rec = obs.enable()
        try:
            records = EvaluationEngine(max_workers=4).evaluate_many(small)
            assert rec.counters.get("engine.small_batch_serial") == 1
            assert (rec.counters.get("engine.grid_cells") or 0) > 0
            # and no pool machinery ran
            assert "engine.parallel" not in {s.name for s in rec.spans}
        finally:
            obs.disable()
        expected = EvaluationEngine().evaluate_many(small)
        for got, want in zip(records, expected):
            assert records_equal(got, want)

    def test_mid_size_parallel_batch_stays_serial_below_threshold(self, tasks):
        rec = obs.enable()
        try:
            EvaluationEngine(max_workers=2).evaluate_many(tasks)  # 16 cells
            assert "engine.parallel" not in {s.name for s in rec.spans}
            assert not rec.counters.get("engine.small_batch_serial")
        finally:
            obs.disable()

    def test_percell_backend_disables_grid(self, tasks):
        rec = obs.enable()
        try:
            EvaluationEngine(grid_backend="percell").evaluate_many(tasks)
            assert not rec.counters.get("engine.grid_cells")
        finally:
            obs.disable()

    def test_cell_errors_isolated_in_grid_path(self, tasks):
        from repro.engine import CellError

        hw = tasks[0].hw
        one_by_one = ConvSpec(ic=8, oc=8, ih=14, iw=14, kh=1, kw=1, index=9)
        bad = EvalTask("winograd", one_by_one, hw, fallback=False)
        records = EvaluationEngine().evaluate_many(
            [bad] + tasks[:3], on_error="record"
        )
        assert isinstance(records[0], CellError)
        assert records[0].error_type == "NotApplicableError"
        assert all(not isinstance(r, CellError) for r in records[1:])

    def test_injected_cell_faults_surface_in_grid_path(self, tasks):
        from repro.engine import CellError

        with faults.inject("seed=5,cell.error=1.0"):
            records = EvaluationEngine(use_cache=False).evaluate_many(
                tasks[:4], on_error="record"
            )
        assert all(isinstance(r, CellError) for r in records)
        assert all(r.error_type == "InjectedFaultError" for r in records)

    def test_grid_machinery_failure_falls_back_per_cell(
        self, tasks, monkeypatch
    ):
        import repro.engine.executor as executor

        def explode(items, calibration, backend=None):
            raise RuntimeError("grid machinery broke")

        monkeypatch.setattr(executor, "_compute_grid", explode)
        rec = obs.enable()
        try:
            records = EvaluationEngine().evaluate_many(tasks)
            assert rec.counters.get("engine.grid_fallbacks") == 1
        finally:
            obs.disable()
        expected = EvaluationEngine(grid_backend="percell").evaluate_many(tasks)
        for got, want in zip(records, expected):
            assert records_equal(got, want)

    def test_engine_grid_backend_pins_evaluation_backend(self, tasks):
        rec = obs.enable()
        try:
            EvaluationEngine(grid_backend="numpy").evaluate_many(tasks)
            assert (rec.counters.get("analytical.grid_backend.numpy") or 0) >= 1
        finally:
            obs.disable()

    def test_cold_campaign_grid_matches_percell_with_cache(self, tmp_path):
        """Cold cache-disabled sweep: tensorized records == per-cell ones."""
        hw = [HardwareConfig.paper2_rvv(v, 1.0) for v in (512, 2048)]
        specs = [
            ConvSpec(ic=8, oc=16, ih=20, iw=20, kh=3, kw=3, index=i)
            for i in range(3)
        ]
        fast = EvaluationEngine(use_cache=False)
        slow = EvaluationEngine(use_cache=False, grid_backend="percell")
        a = fast.sweep(specs, hw, ALGORITHM_NAMES)
        b = slow.sweep(specs, hw, ALGORITHM_NAMES)
        assert a.keys() == b.keys()
        for key in a:
            assert records_equal(a[key], b[key])
        # and records cached by the grid path replay identically
        cached = EvaluationEngine(cache=MemoCache(disk_dir=tmp_path))
        first = cached.sweep(specs, hw, ALGORITHM_NAMES)
        again = cached.sweep(specs, hw, ALGORITHM_NAMES)
        for key in first:
            assert records_equal(first[key], again[key])
