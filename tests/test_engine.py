"""Tests for the memoized + parallel evaluation engine (repro.engine)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.algorithms.registry import ALGORITHM_NAMES, layer_cycles
from repro.engine import (
    CALIBRATION_VERSION,
    EvalTask,
    EvaluationEngine,
    MemoCache,
    cache_key,
    calibration_fingerprint,
    record_from_dict,
    record_to_dict,
)
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.calibration import Calibration
from repro.simulator.hwconfig import HardwareConfig

SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def phases_equal(a, b) -> bool:
    """Exact (bit-identical) equality of two LayerCycles records."""
    return a.algorithm == b.algorithm and [
        p.__dict__ for p in a.phases
    ] == [p.__dict__ for p in b.phases]


@pytest.fixture
def spec() -> ConvSpec:
    return ConvSpec(ic=16, oc=32, ih=28, iw=28, kh=3, kw=3, index=3)


@pytest.fixture
def hw() -> HardwareConfig:
    return HardwareConfig.paper2_rvv(512, 1.0)


class TestCacheKeys:
    def test_deterministic(self, spec, hw):
        assert cache_key("direct", spec, hw) == cache_key("direct", spec, hw)

    def test_distinct_inputs_distinct_keys(self, spec, hw):
        base = cache_key("direct", spec, hw)
        assert cache_key("winograd", spec, hw) != base
        assert cache_key("direct", spec.__class__(**{
            **{f: getattr(spec, f) for f in
               ("ic", "oc", "ih", "iw", "kh", "kw", "stride", "pad", "index")},
            "ic": spec.ic + 1,
        }), hw) != base
        assert cache_key("direct", spec, hw.with_(vlen_bits=1024)) != base

    def test_calibration_changes_key(self, spec, hw):
        tweaked = Calibration(dram_efficiency=0.71)
        assert calibration_fingerprint(tweaked) != CALIBRATION_VERSION
        assert cache_key("direct", spec, hw, tweaked) != cache_key(
            "direct", spec, hw
        )

    def test_stable_across_processes(self, spec, hw):
        """The key must not depend on the interpreter's hash seed."""
        code = (
            "from repro.engine import cache_key\n"
            "from repro.nn.layer import ConvSpec\n"
            "from repro.simulator.hwconfig import HardwareConfig\n"
            "print(cache_key('direct',"
            " ConvSpec(ic=16, oc=32, ih=28, iw=28, kh=3, kw=3, index=3),"
            " HardwareConfig.paper2_rvv(512, 1.0)))"
        )
        keys = []
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=str(SRC_DIR))
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True, env=env,
            )
            keys.append(out.stdout.strip())
        assert keys[0] == keys[1] == cache_key("direct", spec, hw)


class TestRecordSerialization:
    def test_round_trip_bit_identical(self, spec, hw):
        record = layer_cycles("im2col_gemm6", spec, hw)
        # through an actual JSON text round-trip, as the disk tier does
        payload = json.loads(json.dumps(record_to_dict(record)))
        assert phases_equal(record_from_dict(payload), record)


class TestMemoCacheTiers:
    def test_hit_miss_accounting(self, spec, hw):
        cache = MemoCache()
        key = cache_key("direct", spec, hw)
        assert cache.get(key) is None
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        cache.put(key, layer_cycles("direct", spec, hw))
        assert cache.get(key) is not None
        assert cache.stats.hits == 1 and cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_capacity_bound(self, hw):
        cache = MemoCache(capacity=4)
        specs = [ConvSpec(ic=4, oc=4, ih=8, iw=8, index=i) for i in range(6)]
        keys = [cache_key("direct", s, hw) for s in specs]
        for s, k in zip(specs, keys):
            cache.put(k, layer_cycles("direct", s, hw))
        assert len(cache) == 4
        assert cache.stats.evictions == 2
        # oldest two evicted, newest four retained (LRU order)
        assert cache.get(keys[0]) is None and cache.get(keys[1]) is None
        assert all(cache.get(k) is not None for k in keys[2:])

    def test_lru_touch_on_get_protects_entry(self, hw):
        cache = MemoCache(capacity=2)
        specs = [ConvSpec(ic=4, oc=4, ih=8, iw=8, index=i) for i in range(3)]
        keys = [cache_key("direct", s, hw) for s in specs]
        cache.put(keys[0], layer_cycles("direct", specs[0], hw))
        cache.put(keys[1], layer_cycles("direct", specs[1], hw))
        cache.get(keys[0])  # touch: 1 becomes least-recently-used
        cache.put(keys[2], layer_cycles("direct", specs[2], hw))
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None

    def test_disk_round_trip(self, tmp_path, spec, hw):
        key = cache_key("winograd", spec, hw)
        record = layer_cycles("winograd", spec, hw)
        writer = MemoCache(disk_dir=tmp_path)
        writer.put(key, record)
        # a fresh cache (fresh process stand-in) reads it back bit-identically
        reader = MemoCache(disk_dir=tmp_path)
        got = reader.get(key)
        assert got is not None and phases_equal(got, record)
        assert reader.stats.disk_hits == 1
        # promoted to memory: second get is a memory hit
        reader.get(key)
        assert reader.stats.hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path, spec, hw):
        key = cache_key("direct", spec, hw)
        cache = MemoCache(disk_dir=tmp_path)
        cache.put(key, layer_cycles("direct", spec, hw))
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{ truncated")
        assert MemoCache(disk_dir=tmp_path).get(key) is None

    def test_memory_eviction_keeps_disk_entry(self, tmp_path, hw):
        cache = MemoCache(capacity=1, disk_dir=tmp_path)
        specs = [ConvSpec(ic=4, oc=4, ih=8, iw=8, index=i) for i in range(2)]
        keys = [cache_key("direct", s, hw) for s in specs]
        for s, k in zip(specs, keys):
            cache.put(k, layer_cycles("direct", s, hw))
        assert cache.get(keys[0]) is not None  # served from disk
        assert cache.stats.disk_hits == 1


class TestEvaluationEngine:
    def test_cold_equals_direct_warm_equals_cold(self, spec, hw):
        """Engine records are bit-identical to direct layer_cycles calls."""
        engine = EvaluationEngine()
        for name in ALGORITHM_NAMES:
            direct = layer_cycles(name, spec, hw)
            cold = engine.evaluate(name, spec, hw)
            warm = engine.evaluate(name, spec, hw)
            assert phases_equal(cold, direct)
            assert phases_equal(warm, direct)
        assert engine.cache.stats.hits >= len(ALGORITHM_NAMES)

    def test_disk_tier_round_trip_bit_identical(self, tmp_path, spec, hw):
        hot = EvaluationEngine(cache=MemoCache(disk_dir=tmp_path))
        records = [hot.evaluate(n, spec, hw) for n in ALGORITHM_NAMES]
        cold_process = EvaluationEngine(cache=MemoCache(disk_dir=tmp_path))
        for name, expected in zip(ALGORITHM_NAMES, records):
            assert phases_equal(cold_process.evaluate(name, spec, hw), expected)
        assert cold_process.cache.stats.misses == 0

    def test_fallback_aliases_im2col_gemm6(self, hw):
        one_by_one = ConvSpec(ic=8, oc=8, ih=14, iw=14, kh=1, kw=1, index=5)
        engine = EvaluationEngine()
        assert engine.key(EvalTask("winograd", one_by_one, hw)) == engine.key(
            EvalTask("im2col_gemm6", one_by_one, hw, fallback=False)
        )
        record = engine.evaluate("winograd", one_by_one, hw)
        assert record.algorithm == "im2col_gemm6"
        assert phases_equal(record, layer_cycles("winograd", one_by_one, hw))

    def test_not_applicable_raises_without_fallback(self, hw):
        from repro.errors import NotApplicableError

        one_by_one = ConvSpec(ic=8, oc=8, ih=14, iw=14, kh=1, kw=1, index=5)
        with pytest.raises(NotApplicableError):
            EvaluationEngine().evaluate(
                "winograd", one_by_one, hw, fallback=False
            )

    def test_batch_dedup_and_order(self, spec, hw):
        engine = EvaluationEngine()
        tasks = [
            EvalTask("direct", spec, hw),
            EvalTask("winograd", spec, hw),
            EvalTask("direct", spec, hw),  # duplicate of task 0
        ]
        records = engine.evaluate_many(tasks)
        assert [r.algorithm for r in records] == ["direct", "winograd", "direct"]
        assert engine.cache.stats.stores == 2  # duplicate computed once
        assert phases_equal(records[0], records[2])

    def test_no_cache_mode_recomputes(self, spec, hw):
        engine = EvaluationEngine(use_cache=False)
        a = engine.evaluate("direct", spec, hw)
        b = engine.evaluate("direct", spec, hw)
        assert engine.cache.stats.stores == 0 and len(engine.cache) == 0
        assert phases_equal(a, b)

    def test_parallel_records_identical_to_serial(self, hw):
        specs = [ConvSpec(ic=8, oc=8, ih=16, iw=16, index=i) for i in range(4)]
        tasks = [
            EvalTask(name, s, hw) for s in specs for name in ALGORITHM_NAMES
        ]
        serial = EvaluationEngine(max_workers=1).evaluate_many(tasks)
        # pool_min_batch=0 forces the real pool even for this small batch
        parallel = EvaluationEngine(
            max_workers=2, pool_min_batch=0
        ).evaluate_many(tasks)
        assert len(serial) == len(parallel) == len(tasks)
        for a, b in zip(serial, parallel):
            assert phases_equal(a, b)

    def test_rejects_bad_worker_counts(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            EvaluationEngine(max_workers=0)
        with pytest.raises(EngineError):
            EvaluationEngine().evaluate_many([], max_workers=0)

    def test_rejects_bad_resilience_knobs(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            EvaluationEngine(chunk_timeout_s=0.0)
        with pytest.raises(EngineError):
            EvaluationEngine(max_retries=-1)
        with pytest.raises(EngineError):
            EvaluationEngine(retry_backoff_s=-0.1)
        with pytest.raises(EngineError):
            EvaluationEngine(pool_min_batch=-1)
        with pytest.raises(EngineError):
            EvaluationEngine(grid_backend="simd")
        with pytest.raises(EngineError):
            EvaluationEngine().evaluate_many([], on_error="ignore")


class TestSerialFallback:
    """Pool-less environments degrade to in-process execution, audibly."""

    @pytest.fixture
    def no_pools(self, monkeypatch):
        import repro.engine.executor as executor

        def refuse(ctx, size):
            raise OSError("process spawning disabled")

        monkeypatch.setattr(
            EvaluationEngine, "_new_pool", staticmethod(refuse)
        )
        monkeypatch.setattr(executor, "_warned_serial_fallback", False)

    def test_falls_back_serially_with_warning_and_counter(
        self, hw, no_pools
    ):
        from repro import obs

        specs = [ConvSpec(ic=8, oc=8, ih=16, iw=16, index=i) for i in range(4)]
        tasks = [
            EvalTask(name, s, hw) for s in specs for name in ALGORITHM_NAMES
        ]
        expected = EvaluationEngine(max_workers=1).evaluate_many(tasks)
        engine = EvaluationEngine(max_workers=2, pool_min_batch=0)
        recorder = obs.enable()
        try:
            with pytest.warns(RuntimeWarning, match="process pool unavailable"):
                records = engine.evaluate_many(tasks)
            assert recorder.snapshot()["counters"]["engine.serial_fallbacks"] == 1
        finally:
            obs.disable()
        for got, want in zip(records, expected):
            assert phases_equal(got, want)

    def test_warns_once_only(self, hw, no_pools):
        import warnings

        specs = [ConvSpec(ic=8, oc=8, ih=16, iw=16, index=i) for i in range(2)]
        tasks = [
            EvalTask(name, s, hw) for s in specs for name in ALGORITHM_NAMES
        ]
        engine = EvaluationEngine(
            max_workers=2, use_cache=False, pool_min_batch=0
        )
        with pytest.warns(RuntimeWarning):
            engine.evaluate_many(tasks)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            engine.evaluate_many(tasks)


class TestCellErrorHandling:
    """Per-cell error isolation and dedup of failing cells."""

    @pytest.fixture
    def failing_task(self, hw) -> EvalTask:
        # winograd without fallback on a 1x1 layer raises NotApplicableError
        one_by_one = ConvSpec(ic=8, oc=8, ih=14, iw=14, kh=1, kw=1, index=5)
        return EvalTask("winograd", one_by_one, hw, fallback=False)

    def test_record_mode_isolates_and_dedups_failures(
        self, spec, hw, failing_task
    ):
        from repro.engine import CellError

        engine = EvaluationEngine()
        records = engine.evaluate_many(
            [failing_task, EvalTask("direct", spec, hw), failing_task],
            on_error="record",
        )
        assert isinstance(records[0], CellError)
        assert records[2] is records[0]  # duplicate shares one error record
        assert records[0].error_type == "NotApplicableError"
        assert records[0].layer == 5 and records[0].vlen_bits == hw.vlen_bits
        assert not isinstance(records[1], CellError)
        assert phases_equal(records[1], layer_cycles("direct", spec, hw))
        assert len(engine.cache) == 1  # the failure was never cached

    def test_raise_mode_reraises_original_type_with_cell_named(
        self, failing_task
    ):
        from repro.errors import NotApplicableError

        with pytest.raises(NotApplicableError, match="winograd on layer 5"):
            EvaluationEngine().evaluate_many([failing_task])

    def test_failures_not_cached_so_retries_recompute(self, failing_task):
        from repro.engine import CellError

        engine = EvaluationEngine()
        first = engine.evaluate_many([failing_task], on_error="record")
        second = engine.evaluate_many([failing_task], on_error="record")
        assert isinstance(first[0], CellError)
        assert isinstance(second[0], CellError)
        assert second[0] is not first[0]  # recomputed, not replayed
        assert engine.cache.stats.stores == 0


class TestDefaultEngine:
    def test_configure_default(self):
        import repro.engine as eng

        engine = eng.default_engine()
        try:
            eng.configure_default(max_workers=3, use_cache=False)
            assert engine.max_workers == 3 and engine.use_cache is False
        finally:
            eng.configure_default(max_workers=1, use_cache=True)
        assert eng.default_engine() is engine

    def test_cli_flags_reach_default_engine(self, capsys):
        from repro.experiments.cli import main
        import repro.engine as eng

        try:
            # unknown experiment exits early (rc 2) but after flag plumbing
            assert main(["--workers", "2", "--no-cache", "nonexistent"]) == 2
            engine = eng.default_engine()
            assert engine.max_workers == 2 and engine.use_cache is False
            assert main(["--workers", "0", "table1"]) == 2
        finally:
            eng.configure_default(max_workers=1, use_cache=True)


class TestAdapters:
    """The experiment-facing entry points route through the engine."""

    def test_per_layer_seconds_uses_engine_cache(self, hw):
        from repro.experiments.common import per_layer_seconds
        from repro.experiments.configs import workload

        engine = EvaluationEngine()
        specs = workload("vgg16")[:3]
        first = per_layer_seconds(specs, hw, engine=engine)
        misses = engine.cache.stats.misses
        second = per_layer_seconds(specs, hw, engine=engine)
        assert engine.cache.stats.misses == misses  # all warm
        assert first == second

    def test_campaign_records_identical_cold_and_warm(self, hw):
        from repro.experiments.campaign import run_campaign
        from repro.experiments.configs import workload

        engine = EvaluationEngine()
        workloads = {"vgg16": workload("vgg16")[:3]}
        cold = run_campaign(workloads, [hw], engine=engine)
        warm = run_campaign(workloads, [hw], engine=engine)
        assert cold.records == warm.records
        assert engine.cache.stats.hits > 0

    def test_build_dataset_matches_best_algorithm(self, hw):
        from repro.algorithms.registry import best_algorithm
        from repro.selection.dataset import build_dataset
        from repro.experiments.configs import workload

        specs = workload("yolov3")[:4]
        ds = build_dataset(specs=specs, configs=[hw])
        for row, spec in enumerate(specs):
            winner, cycles = best_algorithm(spec, hw)
            assert ds.y[row] == winner
            for name, expected in cycles.items():
                assert ds.cycles_for(row, name) == expected
