"""Tests for repro.utils: validation, units, tables, deterministic RNG."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.utils import (
    GiB,
    KiB,
    MiB,
    Table,
    check_in,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_type,
    human_bytes,
    human_count,
    make_rng,
)
from repro.utils.prng import DEFAULT_SEED, synthetic_tensor
from repro.utils.validation import is_power_of_two


class TestValidation:
    def test_check_positive_accepts(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ConfigError, match="x must be positive"):
            check_positive("x", bad)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ConfigError):
            check_non_negative("x", -1)

    @pytest.mark.parametrize("good", [1, 2, 4, 1024, 16384])
    def test_power_of_two_accepts(self, good):
        check_power_of_two("x", good)
        assert is_power_of_two(good)

    @pytest.mark.parametrize("bad", [0, 3, 6, -4, 1.0, "4"])
    def test_power_of_two_rejects(self, bad):
        assert not is_power_of_two(bad)
        with pytest.raises(ConfigError):
            check_power_of_two("x", bad)

    def test_check_in(self):
        check_in("x", "a", ["a", "b"])
        with pytest.raises(ConfigError, match="must be one of"):
            check_in("x", "c", ["a", "b"])

    def test_check_type_rejects_bool_as_int(self):
        check_type("x", 3, int)
        with pytest.raises(ConfigError):
            check_type("x", True, int)
        with pytest.raises(ConfigError):
            check_type("x", "3", int)


class TestUnits:
    def test_constants(self):
        assert KiB == 1024
        assert MiB == 1024**2
        assert GiB == 1024**3

    @pytest.mark.parametrize(
        "n,expected",
        [(0, "0B"), (512, "512B"), (1536, "1.50KiB"), (3 * MiB, "3.00MiB"),
         (2 * GiB, "2.00GiB")],
    )
    def test_human_bytes(self, n, expected):
        assert human_bytes(n) == expected

    def test_human_bytes_negative(self):
        assert human_bytes(-1536) == "-1.50KiB"

    @pytest.mark.parametrize(
        "n,expected",
        [(5, "5"), (1500, "1.50k"), (2.5e6, "2.50M"), (1.2e9, "1.20G"),
         (3e12, "3.00T")],
    )
    def test_human_count(self, n, expected):
        assert human_count(n) == expected


class TestTable:
    def test_render_aligns_columns(self):
        t = Table(["a", "bee"], title="T")
        t.add_row([1, 2.34567])
        t.add_row(["xx", "y"])
        out = t.render()
        assert out.startswith("T\n")
        lines = out.splitlines()
        assert len({len(l) for l in lines[1:]}) <= 2  # header/sep/rows aligned

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([1.234567])
        assert "1.235" in t.render()

    def test_row_length_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError, match="2 columns"):
            t.add_row([1])

    def test_csv(self):
        t = Table(["a", "b"])
        t.add_row([1, 2])
        assert t.to_csv() == "a,b\n1,2\n"


class TestPrng:
    def test_default_seed_is_deterministic(self):
        assert make_rng().integers(0, 100, 5).tolist() == make_rng().integers(
            0, 100, 5
        ).tolist()

    def test_explicit_seed_differs(self):
        a = make_rng(1).random()
        b = make_rng(2).random()
        assert a != b

    def test_synthetic_tensor_deterministic(self):
        a = synthetic_tensor((3, 4), seed=7)
        b = synthetic_tensor((3, 4), seed=7)
        np.testing.assert_array_equal(a, b)
        assert a.dtype == np.float32

    def test_synthetic_tensor_bounded(self):
        t = synthetic_tensor((100,), seed=1, scale=0.5)
        assert np.abs(t).max() <= 0.5

    def test_synthetic_tensor_shape_changes_values(self):
        a = synthetic_tensor((4, 3), seed=7)
        b = synthetic_tensor((3, 4), seed=7)
        assert not np.array_equal(a.reshape(-1), b.reshape(-1))
