"""Tests for the 7 nm area models."""

import pytest

from repro.errors import ConfigError
from repro.simulator.area import (
    AreaModel,
    chip_area_mm2,
    core_area_mm2,
    multicore_area_mm2,
    sram_area_mm2,
)
from repro.simulator.area.chip import (
    PAPER1_VRF_FRACTION,
    PAPER2_VPU_FRACTION,
    _fraction,
)


class TestSram:
    def test_monotone_in_size(self):
        sizes = [1.0, 4.0, 16.0, 64.0, 256.0]
        areas = [sram_area_mm2(s) for s in sizes]
        assert areas == sorted(areas)

    def test_roughly_linear(self):
        assert sram_area_mm2(64.0) == pytest.approx(64 * sram_area_mm2(1.1) , rel=0.3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            sram_area_mm2(0)

    def test_256mb_dominates_chip(self):
        """Paper I: the 256 MB configuration drives the chip toward ~125 mm^2."""
        total = core_area_mm2(8192, model="paper1") + sram_area_mm2(256.0)
        assert 100.0 <= total <= 150.0


class TestCoreArea:
    def test_paper2_anchor_2p35mm2(self):
        """Paper II: the 2048b x 1MB Pareto-optimal point is 2.35 mm^2."""
        assert chip_area_mm2(2048, 1.0) == pytest.approx(2.35, abs=0.01)

    def test_paper2_fractions_reproduced(self):
        """VPU+VRF fraction of the non-L2 area matches the paper's numbers."""
        base = core_area_mm2(512) * (1 - PAPER2_VPU_FRACTION[512])
        for vl, frac in PAPER2_VPU_FRACTION.items():
            core = core_area_mm2(vl)
            assert (core - base) / core == pytest.approx(frac, abs=1e-9)

    def test_longer_vectors_cost_little_area_vs_cache(self):
        """Paper II §4.4: VL impact on area is minimal, cache dominates."""
        vl_delta = chip_area_mm2(4096, 1.0) - chip_area_mm2(512, 1.0)
        cache_delta = chip_area_mm2(512, 64.0) - chip_area_mm2(512, 1.0)
        assert cache_delta > 5 * vl_delta

    def test_paper1_fractions_table(self):
        for vl, frac in PAPER1_VRF_FRACTION.items():
            core = core_area_mm2(vl, model="paper1")
            base = core * (1 - frac)
            assert base == pytest.approx(4.0, abs=1e-9)

    def test_interpolation_between_points(self):
        f = _fraction(PAPER2_VPU_FRACTION, 1448)  # between 1024 and 2048
        assert PAPER2_VPU_FRACTION[1024] < f < PAPER2_VPU_FRACTION[2048]

    def test_out_of_range_vlen(self):
        with pytest.raises(ConfigError):
            core_area_mm2(256)

    def test_unknown_model(self):
        with pytest.raises(ConfigError):
            core_area_mm2(512, model="paper3")


class TestMulticore:
    def test_cores_replicate(self):
        one = multicore_area_mm2(1, 512, 16.0)
        four = multicore_area_mm2(4, 512, 16.0)
        assert four - one == pytest.approx(3 * core_area_mm2(512))

    def test_l2_shared_once(self):
        a = multicore_area_mm2(64, 512, 256.0)
        assert a < 64 * chip_area_mm2(512, 256.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            multicore_area_mm2(0, 512, 1.0)

    def test_area_model_bundle(self):
        m = AreaModel("paper2")
        assert m.chip(512, 1.0) == chip_area_mm2(512, 1.0)
        assert m.multicore(2, 512, 1.0) == multicore_area_mm2(2, 512, 1.0)
        assert m.core(512) == core_area_mm2(512)
