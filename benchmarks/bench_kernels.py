"""Micro-benchmarks of the library's own hot paths.

These time the *reproduction's* kernels (functional algorithms, the
analytical model, the functional vector machine) — useful for keeping the
experiment harnesses fast as the library evolves.
"""

import numpy as np
import pytest
from _metrics import record_metric

from repro.algorithms import get_algorithm, layer_cycles
from repro.isa import VectorMachine
from repro.nn.layer import ConvSpec
from repro.nn.models import vgg16_conv_specs
from repro.simulator.hwconfig import HardwareConfig

SPEC = ConvSpec(ic=32, oc=32, ih=56, iw=56, kh=3, kw=3, index=1)
RNG = np.random.default_rng(0)
X = RNG.standard_normal((SPEC.ic, SPEC.ih, SPEC.iw)).astype(np.float32)
W = (0.3 * RNG.standard_normal((SPEC.oc, SPEC.ic, 3, 3))).astype(np.float32)


@pytest.mark.parametrize(
    "name", ["direct", "im2col_gemm3", "im2col_gemm6", "winograd"]
)
def test_functional_conv(benchmark, name):
    """Functional execution of one mid-size conv layer."""
    algo = get_algorithm(name)
    out = benchmark(lambda: algo.run(SPEC, X, W))
    assert out.shape == (SPEC.oc, SPEC.oh, SPEC.ow)


def test_analytical_model_full_grid(benchmark):
    """All 4 algorithms x 13 VGG layers on one config — the experiment
    harnesses' inner loop."""
    hw = HardwareConfig.paper2_rvv(512, 1.0)
    specs = vgg16_conv_specs()

    def grid():
        return sum(
            layer_cycles(name, s, hw).cycles
            for s in specs
            for name in ("direct", "im2col_gemm3", "im2col_gemm6", "winograd")
        )

    total = benchmark(grid)
    assert total > 0


def test_vector_machine_saxpy(benchmark):
    """Functional-machine instruction throughput (SAXPY, 4K elements)."""
    def saxpy():
        m = VectorMachine(512, trace=False)
        x = m.alloc_from("x", np.arange(4096, dtype=np.float32))
        y = m.alloc("y", 4096)
        i = 0
        while i < 4096:
            gvl = m.vsetvl(4096 - i)
            m.vload(0, x, i)
            m.vfmacc_vf(0, 2.0, 0)
            m.vstore(0, y, i)
            i += gvl
        return m.trace.stats.total_instrs

    assert benchmark(saxpy) > 0


# ---------------------------------------------------------------------- #
# ISA simulation: batched fast path vs per-op baseline
# ---------------------------------------------------------------------- #

BATCH_SPEC = ConvSpec(ic=8, oc=16, ih=20, iw=20, kh=3, kw=3, index=1)


def _best_of(func, repeats: int = 3) -> float:
    """Min wall time over a few runs (stabilizes the speedup ratio)."""
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_intrinsics_batched_vs_perop(benchmark):
    """The batched/counts-mode ISA path must be >= 5x faster than the
    per-op instruction baseline on the same kernel, with bit-identical
    outputs and identical instruction statistics (see docs/PERF.md)."""
    from repro.algorithms.direct import DirectConv

    alg = DirectConv()
    rng = np.random.default_rng(1)
    x = rng.standard_normal(
        (BATCH_SPEC.ic, BATCH_SPEC.ih, BATCH_SPEC.iw)
    ).astype(np.float32)
    w = (
        0.3 * rng.standard_normal((BATCH_SPEC.oc, BATCH_SPEC.ic, 3, 3))
    ).astype(np.float32)

    def perop():
        m = VectorMachine(512)
        y = alg.run_vectorized_perop(BATCH_SPEC, x, w, m)
        return m.trace.stats, y

    def batched_counts():
        m = VectorMachine(512, trace="counts")
        y = alg.run_vectorized(BATCH_SPEC, x, w, m)
        return m.trace.stats, y

    ref_stats, ref_y = perop()
    fast_stats, fast_y = batched_counts()
    assert np.array_equal(ref_y, fast_y)
    assert fast_stats == ref_stats

    perop_s = _best_of(perop)
    fast_s = _best_of(batched_counts)
    benchmark(batched_counts)

    speedup = perop_s / fast_s
    rate = ref_stats.total_instrs / fast_s / 1e6
    print(f"\nintrinsics path: per-op {perop_s * 1e3:.1f} ms, batched/counts "
          f"{fast_s * 1e3:.2f} ms, speedup {speedup:.0f}x "
          f"({rate:.0f}M instrs/s)")
    record_metric("kernels.intrinsics_batched_vs_perop_speedup", speedup)
    assert speedup >= 5.0, f"batched path only {speedup:.1f}x faster"


def test_vgg_conv3_1_counts_mode(benchmark):
    """Full instruction-level simulation of VGG-16 conv3_1 (128->256 ch,
    56x56) in counts mode — the tentpole feasibility target: single-digit
    seconds for a 10^8-instruction layer."""
    import time

    from repro.algorithms.direct import DirectConv

    spec = next(s for s in vgg16_conv_specs() if (s.ic, s.oc, s.ih) == (128, 256, 56))
    alg = DirectConv()
    rng = np.random.default_rng(2)
    x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
    w = (
        0.05 * rng.standard_normal((spec.oc, spec.ic, 3, 3))
    ).astype(np.float32)

    def run():
        start = time.perf_counter()
        m = VectorMachine(512, trace="counts")
        alg.run_vectorized(spec, x, w, m)
        return m.trace.stats, time.perf_counter() - start

    stats, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nconv3_1 counts mode: {stats.total_instrs / 1e6:.0f}M instrs in "
          f"{elapsed:.2f} s ({stats.total_instrs / elapsed / 1e6:.0f}M instrs/s)")
    assert stats.total_instrs > 100_000_000
    assert elapsed < 10.0, f"conv3_1 counts-mode run took {elapsed:.1f} s"


def test_winograd_transform_generation(benchmark):
    """Exact Cook-Toom construction of F(6,3)."""
    from repro.algorithms.winograd_transforms import winograd_matrices

    wm = benchmark(lambda: winograd_matrices(6, 3))
    assert wm.alpha == 8


# ---------------------------------------------------------------------- #
# evaluation engine: cold vs warm cache
# ---------------------------------------------------------------------- #

def test_engine_cold_vs_warm_full_grid(benchmark):
    """Full VGG-16 + YOLOv3 grid (28 layers x 16 configs x 4 algorithms)
    through the memoized engine: the warm-cache pass must be >= 5x faster
    than the cold pass, with identical totals."""
    import time

    from repro.engine import EvaluationEngine
    from repro.experiments.configs import grid
    from repro.nn.models import yolov3_conv_specs

    specs = vgg16_conv_specs() + yolov3_conv_specs()
    configs = grid()
    engine = EvaluationEngine()
    algorithms = ("direct", "im2col_gemm3", "im2col_gemm6", "winograd")

    def full_grid() -> float:
        records = engine.sweep(specs, configs, algorithms)
        return sum(r.cycles for r in records.values())

    start = time.perf_counter()
    cold_total = full_grid()
    cold_s = time.perf_counter() - start

    warm_total = benchmark(full_grid)
    start = time.perf_counter()
    full_grid()
    warm_s = time.perf_counter() - start

    assert warm_total == cold_total
    assert engine.cache.stats.hits > 0
    speedup = cold_s / warm_s
    print(f"\nengine grid: cold {cold_s * 1e3:.1f} ms, warm "
          f"{warm_s * 1e3:.1f} ms, speedup {speedup:.0f}x")
    record_metric("engine.warm_vs_cold_speedup", speedup)
    assert speedup >= 5.0, f"warm cache only {speedup:.1f}x faster"
