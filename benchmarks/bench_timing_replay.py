"""Benchmarks of the batched (columnar) trace-timing replay path.

Guards the PRs' headline numbers: the set-partitioned batched replay of a
kernel trace must be >= 5x faster than the per-event sequential engine
with bit-identical results; the Numba-compiled and process-sharded
replays must each be >= 3x faster again than that NumPy batched path;
and a full real VGG-16 conv layer trace must replay in single-digit
seconds.  ``REPLAY_BENCH_QUICK=1`` (set by the CI bench-smoke job) skips
the large-layer run and shrinks the compiled/parallel trace.
"""

import os
import time

import numpy as np
import pytest
from _metrics import record_metric

from repro.algorithms.direct import DirectConv
from repro.isa import VectorMachine
from repro.nn.layer import ConvSpec
from repro.nn.models import vgg16_conv_specs
from repro.simulator._compiled import HAVE_NUMBA
from repro.simulator.hwconfig import HardwareConfig
from repro.simulator.timing import TraceTimingModel

QUICK = os.environ.get("REPLAY_BENCH_QUICK") == "1"

REPLAY_SPEC = ConvSpec(ic=8, oc=16, ih=20, iw=20, kh=3, kw=3, index=1)

#: Trace for the compiled/parallel speedup ratios: big enough that the
#: hot loop dominates pool/JIT overheads even in quick mode, VGG-16
#: conv1_1 (the paper's layer) otherwise.
MID_SPEC = ConvSpec(ic=16, oc=32, ih=56, iw=56, kh=3, kw=3, index=1)

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA,
    reason="Numba not installed (the [compiled] extra); CI's bench-smoke "
           "job installs it so these ratios are always gated there",
)


def _best_of(func, repeats: int = 3) -> float:
    """Min wall time over a few runs (stabilizes the speedup ratio)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _trace_for(spec: ConvSpec, vlen_bits: int = 512):
    rng = np.random.default_rng(4)
    x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
    w = (
        0.1 * rng.standard_normal((spec.oc, spec.ic, spec.kh, spec.kw))
    ).astype(np.float32)
    machine = VectorMachine(vlen_bits)
    DirectConv().run_vectorized(spec, x, w, machine)
    return machine.trace


def test_timing_replay_batched_vs_sequential(benchmark):
    """Batched replay must be >= 5x faster than the per-event engine on the
    same trace, with identical TimingResult (see docs/PERF.md)."""
    cfg = HardwareConfig.paper2_rvv(512, 1.0)
    trace = _trace_for(REPLAY_SPEC)
    model = TraceTimingModel(cfg)

    def sequential():
        return model.run(trace, flush=True, engine="sequential")

    def batched():
        # pinned to the numpy backend: this ratio tracks the PR 3
        # set-partitioned engine regardless of what `auto` resolves to
        return model.run(trace, flush=True, engine="batched", backend="numpy")

    assert sequential() == batched()

    seq_s = _best_of(sequential)
    bat_s = _best_of(batched)
    benchmark(batched)

    speedup = seq_s / bat_s
    rate = len(trace) / bat_s / 1e6
    print(f"\ntiming replay: sequential {seq_s * 1e3:.1f} ms, batched "
          f"{bat_s * 1e3:.2f} ms, speedup {speedup:.0f}x "
          f"({len(trace)} events, {rate:.1f}M events/s)")
    record_metric("timing.replay_batched_vs_sequential_speedup", speedup)
    assert speedup >= 5.0, f"batched replay only {speedup:.1f}x faster"


@needs_numba
def test_timing_replay_compiled_vs_batched(benchmark):
    """The Numba kernel must beat the NumPy set-partitioned engine >= 3x
    on the same trace, bit-identically (see docs/PERF.md)."""
    cfg = HardwareConfig.paper2_rvv(512, 1.0)
    trace = _trace_for(MID_SPEC if QUICK else vgg16_conv_specs()[0])
    model = TraceTimingModel(cfg)

    def numpy_batched():
        return model.run(trace, flush=True, engine="batched", backend="numpy")

    def compiled():
        return model.run(
            trace, flush=True, engine="batched", backend="compiled"
        )

    assert numpy_batched() == compiled()  # also warms the JIT caches

    np_s = _best_of(numpy_batched)
    c_s = _best_of(compiled)
    benchmark(compiled)

    speedup = np_s / c_s
    rate = len(trace) / c_s / 1e6
    print(f"\ncompiled replay: numpy {np_s * 1e3:.1f} ms, compiled "
          f"{c_s * 1e3:.2f} ms, speedup {speedup:.1f}x "
          f"({len(trace)} events, {rate:.1f}M events/s)")
    record_metric("timing.replay_compiled_vs_batched_speedup", speedup)
    assert speedup >= 3.0, f"compiled replay only {speedup:.1f}x faster"


@needs_numba
def test_timing_replay_parallel_vs_batched(benchmark):
    """Sharded replay (auto backend in every worker) must beat the NumPy
    batched engine >= 3x with identical results."""
    from repro.simulator import replay_parallel

    cfg = HardwareConfig.paper2_rvv(512, 1.0)
    trace = _trace_for(MID_SPEC if QUICK else vgg16_conv_specs()[0])
    model = TraceTimingModel(cfg)
    workers = max(2, min(4, os.cpu_count() or 1))

    def numpy_batched():
        return model.run(trace, flush=True, engine="batched", backend="numpy")

    def parallel():
        return model.run(trace, flush=True, engine="batched", workers=workers)

    # warm the pool and every worker's JIT cache before timing
    assert numpy_batched() == parallel()

    np_s = _best_of(numpy_batched)
    par_s = _best_of(parallel)
    benchmark(parallel)
    replay_parallel.shutdown_pool()

    speedup = np_s / par_s
    rate = len(trace) / par_s / 1e6
    print(f"\nparallel replay: numpy {np_s * 1e3:.1f} ms, {workers}-worker "
          f"sharded {par_s * 1e3:.2f} ms, speedup {speedup:.1f}x "
          f"({len(trace)} events, {rate:.1f}M events/s)")
    record_metric("timing.replay_parallel_vs_batched_speedup", speedup)
    assert speedup >= 3.0, f"parallel replay only {speedup:.1f}x faster"


@pytest.mark.skipif(QUICK, reason="REPLAY_BENCH_QUICK=1: skip large layer")
def test_vgg_conv1_1_full_trace_replay(benchmark):
    """Full-trace timing of VGG-16 conv1_1 (3->64 ch, 224x224): the
    acceptance target is single-digit seconds for the batched replay of a
    multi-million-event real-layer trace."""
    spec = vgg16_conv_specs()[0]
    trace = _trace_for(spec)
    model = TraceTimingModel(HardwareConfig.paper2_rvv(512, 1.0))

    def run():
        start = time.perf_counter()
        res = model.run(trace, flush=True, engine="batched")
        return res, time.perf_counter() - start

    res, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nconv1_1 trace replay: {len(trace) / 1e6:.1f}M events in "
          f"{elapsed:.2f} s ({len(trace) / elapsed / 1e6:.1f}M events/s)")
    assert res.cycles > 0 and res.memory_instrs > 0
    assert elapsed < 10.0, f"conv1_1 batched replay took {elapsed:.1f} s"
