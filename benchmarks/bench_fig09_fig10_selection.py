"""Benchmark + regeneration of Figs. 9-10 (single vs Optimal vs Predicted).

Shares one trained selector across both figures (training is benchmarked
separately in bench_selection_training).
"""

from conftest import emit

from repro.experiments.fig09_vgg_selection import run as run_fig09
from repro.experiments.fig10_yolo_selection import run as run_fig10


def test_fig09_vgg_selection(benchmark, trained_selector):
    """Fig. 9: VGG-16 network time per policy over the 16-config grid."""
    result = benchmark.pedantic(
        lambda: run_fig09(selector=trained_selector), rounds=1, iterations=1
    )
    emit(result)
    ratios = result.data["max_speedup_vs_single"]
    print(f"Optimal speedup vs Direct: up to {ratios['direct']:.2f}x "
          f"(paper: 1.85x); vs GEMM-6: up to {ratios['im2col_gemm6']:.2f}x "
          f"(paper: 1.73x)")


def test_fig10_yolo_selection(benchmark, trained_selector):
    """Fig. 10: YOLOv3 network time per policy over the 16-config grid."""
    result = benchmark.pedantic(
        lambda: run_fig10(selector=trained_selector), rounds=1, iterations=1
    )
    emit(result)
    ratios = result.data["max_speedup_vs_single"]
    print(f"Optimal speedup vs Direct: up to {ratios['direct']:.2f}x "
          f"(paper: 1.33x); vs GEMM-6: up to {ratios['im2col_gemm6']:.2f}x "
          f"(paper: 2.11x)")
