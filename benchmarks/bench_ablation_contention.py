"""Benchmark + regeneration of cache-contention ablation."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_ablation_contention(benchmark):
    """cache-contention ablation: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("ablation-contention"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
