"""Benchmark + regeneration of Fig. 7 (YOLOv3 L2 sweep @512b)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_fig07_yolo_cache_sweep(benchmark):
    """Fig. 7 (YOLOv3 L2 sweep @512b): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("fig07"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
