"""Benchmark + regeneration of the epilogue-fusion ablation."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_ablation_fusion(benchmark):
    """Epilogue fusion study: print the rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("ablation-fusion"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
