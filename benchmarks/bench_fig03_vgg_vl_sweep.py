"""Benchmark + regeneration of Fig. 3 (VGG-16 vector-length sweep)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_fig03_vgg_vl_sweep(benchmark):
    """Fig. 3 (VGG-16 vector-length sweep): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("fig03"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
