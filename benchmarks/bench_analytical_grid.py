"""Benchmarks of the tensorized analytical-grid evaluator.

Guards ISSUE 8's headline number: evaluating the paper's full hardware
grid (every applicable (layer, algorithm, hardware) cell) through one
columnar :func:`~repro.simulator.analytical.grid.evaluate_phase_table`
call must be >= 20x faster than the retained per-cell dispatch — with
bit-identical records.

The comparison mirrors what the engine fast path replaces.  The
per-cell path resolves the algorithm, rebuilds the loop-nest schedule
and evaluates the model *for every cell of every call* (that is what
``registry.layer_cycles`` / ``executor._compute_chunk`` do).  The
columnar :class:`PhaseTable` is built **once per grid** by design and
then evaluated in one tensorized call, so the table build sits outside
the timed region the same way the per-cell side's applicability
filtering does.
"""

import gc
import time

import pytest
from _metrics import record_metric

from repro.algorithms.registry import (
    ALGORITHM_NAMES,
    get_algorithm,
    layer_cycles,
)
from repro.experiments.configs import workload
from repro.simulator._compiled import HAVE_NUMBA
from repro.simulator.analytical.grid import PhaseTable, evaluate_phase_table
from repro.simulator.hwconfig import HardwareConfig

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA,
    reason="Numba not installed (the [compiled] extra); CI's bench-smoke "
           "job installs it so this ratio is always gated there",
)


def _best_of(func, repeats: int = 3) -> float:
    """Min wall time over a few runs (stabilizes the speedup ratio).

    GC is suspended while timing — both paths allocate thousands of
    record objects per call, and collector pauses land arbitrarily,
    skewing the ratio (same rationale as pytest-benchmark's
    ``--benchmark-disable-gc``).
    """
    best = float("inf")
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            func()
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


def _paper_configs():
    """The paper's VLEN x L2 sweep (16 integrated-style configs)."""
    return [
        HardwareConfig.paper2_rvv(v, l2)
        for v in (512, 1024, 2048, 4096)
        for l2 in (1.0, 4.0, 16.0, 64.0)
    ]


def _grid_work():
    """All applicable (name, spec, hw) cells of the paper grid."""
    specs = workload("vgg16") + workload("yolov3")
    work = []
    for hw in _paper_configs():
        for spec in specs:
            for name in ALGORITHM_NAMES:
                if get_algorithm(name).applicable(spec):
                    work.append((name, spec, hw))
    return work


def _prebuilt_cells(work):
    """(algorithm, phases, hw) triples with schedules already built."""
    return [
        (name, get_algorithm(name).schedule(spec, hw), hw)
        for name, spec, hw in work
    ]


def records_equal(a, b) -> bool:
    return a.algorithm == b.algorithm and [
        p.__dict__ for p in a.phases
    ] == [p.__dict__ for p in b.phases]


def test_grid_vs_percell_speedup(benchmark):
    """One tensorized call over the prebuilt grid table must be >= 20x
    faster than per-cell dispatch (resolve + schedule + evaluate per
    cell), bit-identically (see docs/PERF.md)."""
    work = _grid_work()
    table = PhaseTable.from_cells(_prebuilt_cells(work))

    def percell():
        # the retained per-cell path, exactly as executor._compute_chunk
        # dispatches it: every call re-resolves the algorithm, rebuilds
        # the schedule and evaluates the model
        return [
            layer_cycles(name, spec, hw, fallback=False)
            for name, spec, hw in work
        ]

    def grid():
        # numpy backend: the gated ratio tracks the always-available
        # tensorized path regardless of what `auto` resolves to
        return evaluate_phase_table(table, backend="numpy")

    for a, b in zip(percell(), grid()):
        assert records_equal(a, b)

    # interleave the two sides so both minima sample the same time
    # window — back-to-back blocks let a noisy scheduler period land on
    # one side only and skew the ratio
    cell_s = grid_s = float("inf")
    for _ in range(4):
        cell_s = min(cell_s, _best_of(percell, repeats=1))
        grid_s = min(grid_s, _best_of(grid, repeats=3))
    benchmark(grid)

    speedup = cell_s / grid_s
    rate = len(work) / grid_s
    print(f"\nanalytical grid: per-cell {cell_s * 1e3:.1f} ms, tensorized "
          f"{grid_s * 1e3:.2f} ms, speedup {speedup:.0f}x "
          f"({len(work)} cells, {rate / 1e3:.0f}k cells/s)")
    # loose in-test sanity bound; the committed >= 20x floor in
    # benchmarks/baselines.json is enforced by check_bench_regression.py
    record_metric("analytical.grid_vs_percell_speedup", speedup)
    assert speedup >= 10.0, f"tensorized grid only {speedup:.1f}x faster"


@needs_numba
def test_grid_compiled_matches_numpy(benchmark):
    """The Numba kernel must stay bit-identical to the numpy backend on
    the full grid (speed is a bonus at this row count, not a contract:
    both are already far inside the end-to-end budget)."""
    table = PhaseTable.from_cells(_prebuilt_cells(_grid_work()))

    def numpy_grid():
        return evaluate_phase_table(table, backend="numpy")

    def compiled_grid():
        return evaluate_phase_table(table, backend="compiled")

    ref = numpy_grid()
    got = compiled_grid()  # also warms the JIT cache
    for a, b in zip(ref, got):
        assert records_equal(a, b)

    np_s = _best_of(numpy_grid)
    c_s = _best_of(compiled_grid)
    benchmark(compiled_grid)
    print(f"\ncompiled grid: numpy {np_s * 1e3:.2f} ms, compiled "
          f"{c_s * 1e3:.2f} ms ({np_s / c_s:.1f}x)")


def test_cold_engine_batch_uses_grid(benchmark):
    """End-to-end: a cold cache-disabled engine batch (serial) through the
    tensorized path must beat the pinned per-cell mode and stay
    bit-identical — the serving/campaign cold-start this PR targets."""
    from repro.engine import EvalTask, EvaluationEngine

    specs = workload("vgg16") + workload("yolov3")
    tasks = [
        EvalTask(name, spec, hw)
        for spec in specs
        for hw in _paper_configs()
        for name in ALGORITHM_NAMES
    ]
    fast = EvaluationEngine(use_cache=False)
    slow = EvaluationEngine(use_cache=False, grid_backend="percell")

    for a, b in zip(fast.evaluate_many(tasks), slow.evaluate_many(tasks)):
        assert records_equal(a, b)

    fast_s = _best_of(lambda: fast.evaluate_many(tasks))
    slow_s = _best_of(lambda: slow.evaluate_many(tasks))
    benchmark(lambda: fast.evaluate_many(tasks))
    print(f"\ncold engine {len(tasks)}-task batch: per-cell "
          f"{slow_s * 1e3:.0f} ms, grid fast path {fast_s * 1e3:.0f} ms "
          f"({slow_s / fast_s:.1f}x)")
    assert fast_s < slow_s, "grid fast path slower than per-cell engine"
