"""Benchmark + regeneration of Paper I Fig. 7 (L2 sweep to 256MB)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_paper1_cache_sweep(benchmark):
    """Paper I Fig. 7 (L2 sweep to 256MB): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("paper1-cache"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
