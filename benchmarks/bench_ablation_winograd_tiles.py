"""Benchmark + regeneration of the Winograd tile-size accuracy study."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_ablation_winograd_tiles(benchmark):
    """Winograd tile-size accuracy: print the rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("ablation-winograd-tiles"), rounds=1, iterations=1
    )
    emit(result)
    assert result.data["largest_ok"] == 6
