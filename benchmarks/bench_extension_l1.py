"""Benchmark + regeneration of the extension-l1 study."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_extension_l1(benchmark):
    """extension-l1: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("extension-l1"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
