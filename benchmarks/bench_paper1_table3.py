"""Benchmark + regeneration of Paper I Table III (avg VL + L2 miss rates)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_paper1_table3(benchmark):
    """Paper I Table III (avg VL + L2 miss rates): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("paper1-table3"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
