"""Benchmark + regeneration of the extension-energy study."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_extension_energy(benchmark):
    """extension-energy: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("extension-energy"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
