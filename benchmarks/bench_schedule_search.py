"""Benchmark + CI gate for the schedule search.

Runs the bounded smoke-scope search twice on fresh engines and asserts the
properties the schedule subsystem guarantees:

* **bit-determinism** — two seeded runs produce identical reports;
* **match-or-beat** — every (layer, VL, L2) cell's searched schedule is at
  least as fast (predicted) as the fixed menu's best;
* **search pays** — a variant strictly beats the menu on >= 10 % of cells.

The geometric-mean menu/searched cycle ratio is recorded as
``schedule.search_best_vs_menu_ratio`` for the committed-floor regression
gate (``benchmarks/baselines.json``).  Unlike the wall-clock ratios, this
metric is a pure model output: it is bit-stable across machines, so the
floor guards the *search quality* itself — a template or cost-model change
that stops finding better schedules fails CI.
"""

from __future__ import annotations

from _metrics import record_metric
from conftest import emit

from repro.engine import EvaluationEngine
from repro.experiments.schedule_search import (
    QUICK_L2_SIZES_MIB,
    QUICK_LAYER_INDICES,
    QUICK_VECTOR_LENGTHS,
    result_from_report,
)
from repro.experiments.configs import workload
from repro.schedule.search import SearchBounds, search_schedules
from repro.simulator.hwconfig import HardwareConfig


def _smoke_scope():
    specs = {s.index: s for s in workload("vgg16")}
    return (
        [specs[i] for i in QUICK_LAYER_INDICES],
        [
            HardwareConfig.paper2_rvv(vl, l2)
            for vl in QUICK_VECTOR_LENGTHS
            for l2 in QUICK_L2_SIZES_MIB
        ],
    )


def _run_search():
    specs, configs = _smoke_scope()
    # a fresh engine per run: determinism must not lean on a shared cache
    engine = EvaluationEngine()
    return search_schedules(specs, configs, engine=engine, bounds=SearchBounds())


def test_schedule_search_gate(benchmark):
    """Determinism + match-or-beat + beat-fraction, with the ratio metric."""
    report = benchmark.pedantic(_run_search, rounds=1, iterations=1)
    rerun = _run_search()

    # bit-deterministic given the seed (fresh engines on both sides)
    assert rerun.cells == report.cells

    # match-or-beat on EVERY evaluated cell (menu defaults are candidates)
    assert report.cells
    assert report.min_ratio >= 1.0

    # the search must strictly beat the menu on at least 10% of cells
    assert report.beat_fraction >= 0.10

    emit(result_from_report(report))
    record_metric("schedule.search_best_vs_menu_ratio", report.geomean_ratio)
