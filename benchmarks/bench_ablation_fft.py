"""Benchmark + regeneration of FFT-exclusion ablation (kernel-size crossover)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_ablation_fft(benchmark):
    """FFT-exclusion ablation (kernel-size crossover): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("ablation-fft"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
