"""Shared fixtures/helpers for the benchmark harness.

Each ``bench_*`` module regenerates one paper artifact: it prints the same
rows/series the paper's table or figure reports and benchmarks the harness
run with pytest-benchmark.  Expensive shared state (the trained selector)
is session-scoped.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def trained_selector():
    from repro.selection.dataset import build_dataset
    from repro.selection.predictor import AlgorithmSelector

    selector = AlgorithmSelector(n_estimators=60)
    selector.train(build_dataset())
    return selector


def emit(result) -> None:
    """Print a reproduced artifact (shown with pytest -s)."""
    print()
    print(result.render())
