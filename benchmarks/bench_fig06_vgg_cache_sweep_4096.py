"""Benchmark + regeneration of Fig. 6 (VGG-16 L2 sweep @4096b)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_fig06_vgg_cache_sweep_4096(benchmark):
    """Fig. 6 (VGG-16 L2 sweep @4096b): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("fig06"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
