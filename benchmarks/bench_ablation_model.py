"""Benchmark + regeneration of model-mechanism ablation."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_ablation_model(benchmark):
    """model-mechanism ablation: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("ablation-model"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
