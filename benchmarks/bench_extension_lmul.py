"""Benchmark + regeneration of the LMUL-vs-VLEN co-design study."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_extension_lmul(benchmark):
    """LMUL study: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("extension-lmul"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
