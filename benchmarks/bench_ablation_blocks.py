"""Benchmark + regeneration of the block-tuning ablation."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_ablation_blocks(benchmark):
    """Block re-tuning study: print the rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("ablation-blocks"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
