"""Benchmark + regeneration of Fig. 12 (throughput-area, co-located serving)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_fig12_colocation(benchmark):
    """Fig. 12 (throughput-area, co-located serving): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("fig12"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
