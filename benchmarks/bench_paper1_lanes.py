"""Benchmark + regeneration of Paper I lanes study."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_paper1_lanes(benchmark):
    """Paper I lanes study: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("paper1-lanes"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
