"""Benchmark + regeneration of Paper I Table IV (AI + sustained performance)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_paper1_roofline(benchmark):
    """Paper I Table IV (AI + sustained performance): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("paper1-roofline"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
