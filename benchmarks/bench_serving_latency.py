"""Benchmark + regeneration of serving latency under load."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_serving_latency(benchmark):
    """serving latency under load: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("serving-latency"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
