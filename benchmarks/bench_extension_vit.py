"""Benchmark + regeneration of ViT attention extension."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_extension_vit(benchmark):
    """ViT attention extension: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("extension-vit"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
