"""Benchmark + regeneration of Paper I's A64FX Winograd headlines."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_paper1_winograd_a64fx(benchmark):
    """Winograd vs im2col+GEMM on the A64FX: print rows and time the run."""
    result = benchmark.pedantic(
        lambda: run_experiment("paper1-winograd-a64fx"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
