"""Benchmark + regeneration of Table 1 (layer dimensions)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_table1_layers(benchmark):
    """Table 1 (layer dimensions): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("table1"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
