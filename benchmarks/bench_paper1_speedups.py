"""Benchmark + regeneration of Paper I speedup ladder (manual vs autovec)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_paper1_speedups(benchmark):
    """Paper I speedup ladder (manual vs autovec): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("paper1-speedups"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
