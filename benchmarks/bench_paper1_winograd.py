"""Benchmark + regeneration of Paper I Figs. 9-10 (Winograd sweeps)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_paper1_winograd(benchmark):
    """Paper I Figs. 9-10 (Winograd sweeps): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("paper1-winograd"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
