"""Benchmark + regeneration of the mixed-model serving study."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_serving_mixed(benchmark):
    """Mixed-model serving: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("serving-mixed"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
