"""Benchmark + regeneration of the inference-time profile."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_profile_breakdown(benchmark):
    """Conv/FC/other shares: print the rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("profile-breakdown"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
