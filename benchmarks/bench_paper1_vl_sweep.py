"""Benchmark + regeneration of Paper I Fig. 6 (VL sweep to 16384b)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_paper1_vl_sweep(benchmark):
    """Paper I Fig. 6 (VL sweep to 16384b): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("paper1-vl"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
