"""Benchmark + regeneration of Fig. 2 (YOLOv3 per-layer comparison @512b/1MB)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_fig02_yolo_baseline(benchmark):
    """Fig. 2 (YOLOv3 per-layer comparison @512b/1MB): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("fig02"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
