"""Benchmark + regeneration of the paper1-archcompare study."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_paper1_archcompare(benchmark):
    """paper1-archcompare: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("paper1-archcompare"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
