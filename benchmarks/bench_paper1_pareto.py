"""Benchmark + regeneration of Paper I Fig. 11 (VRF-only Pareto)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_paper1_pareto(benchmark):
    """Paper I Fig. 11 (VRF-only Pareto): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("paper1-pareto"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
