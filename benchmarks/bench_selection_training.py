"""Benchmark the selection pipeline: dataset build, RF training, inference.

Regenerates the paper's §4.3 classifier-accuracy result (92.8 %-class mean
accuracy over 5-fold shuffled cross-validation on 448 points).
"""

import numpy as np

from repro.selection.dataset import build_dataset
from repro.selection.forest import RandomForestClassifier
from repro.selection.predictor import AlgorithmSelector


def test_dataset_build(benchmark):
    """448 analytical-model evaluations x 4 algorithms."""
    ds = benchmark(build_dataset)
    assert len(ds) == 448


def test_rf_training_cv(benchmark):
    """5-fold shuffled CV + final fit (the paper's protocol)."""
    ds = build_dataset()

    def train():
        selector = AlgorithmSelector(n_estimators=60)
        return selector.train(ds)

    report = benchmark.pedantic(train, rounds=1, iterations=1)
    print()
    print("RF selector:", report.summary())
    print("(paper: 92.8% mean accuracy, folds 91-96%)")
    assert report.mean_accuracy >= 0.88


def test_rf_inference_latency(benchmark):
    """Per-layer selection latency — must be negligible vs a conv layer."""
    ds = build_dataset()
    rf = RandomForestClassifier(n_estimators=60, max_depth=10, random_state=0)
    rf.fit(ds.X, ds.y)
    row = ds.X[:1]
    benchmark(lambda: rf.predict(row))
