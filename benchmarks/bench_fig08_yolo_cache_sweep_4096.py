"""Benchmark + regeneration of Fig. 8 (YOLOv3 L2 sweep @4096b)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_fig08_yolo_cache_sweep_4096(benchmark):
    """Fig. 8 (YOLOv3 L2 sweep @4096b): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("fig08"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
