"""Benchmark + regeneration of the selection-features study."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_selection_features(benchmark):
    """selection-features: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("selection-features"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
