"""Benchmark + CI gate for replica-pool availability under faults.

Replays the ISSUE 10 chaos scenario — the pinned bursty 10k-request trace
against four engine-backed replicas while the seeded fault plan kills one
of them mid-trace — and records the admitted-success fraction as
``serve.router_availability_under_faults`` for the committed-floor
regression gate (``benchmarks/baselines.json``).

Like ``schedule.search_best_vs_menu_ratio`` this metric is a pure model
output on the virtual clock: it is bit-stable across machines, so the
committed floor of 1.0 is exact — the router must fail over every request
the dead replica would have served.  Any routing regression that lets an
admitted request error out fails CI.
"""

from __future__ import annotations

from _metrics import record_metric

from repro import faults
from repro.algorithms.registry import layer_cycles
from repro.engine.executor import EvaluationEngine
from repro.nn.models.vgg16 import vgg16_conv_specs
from repro.serve import (
    InProcessReplica,
    PredictionService,
    ReplicaRouter,
    TraceSpec,
    generate_trace,
    routed_replay,
)
from repro.simulator.hwconfig import HardwareConfig

# the pinned chaos scenario (mirrors tests/test_serve_router.py): fault
# seed 4 at this crash rate kills exactly replica-2 partway through the
# trace, so every later request sharded to it must fail over.
N_REQUESTS = 10_000
N_REPLICAS = 4
TRACE_SEED = 20240812
ROUTER_SEED = 7
FAULT_SPEC = "seed=4,replica.crash=0.0005"


def _workload():
    specs = vgg16_conv_specs()
    hws = [
        HardwareConfig.paper2_rvv(vl, l2)
        for vl in (256, 512)
        for l2 in (1.0, 2.0)
    ]
    return [(s, hw) for hw in hws for s in specs]


def _run_chaos_replay():
    pool = _workload()
    mean_safe = sum(
        layer_cycles("im2col_gemm6", s, hw, fallback=True).seconds(hw.freq_ghz)
        for s, hw in pool
    ) / len(pool)
    trace = generate_trace(
        TraceSpec(
            pattern="bursty", n_requests=N_REQUESTS,
            rate_rps=2.0 * N_REPLICAS / mean_safe,
            seed=TRACE_SEED, burst_factor=4.0,
        ),
        pool,
    )
    engine = EvaluationEngine()
    replicas = [
        InProcessReplica(
            f"replica-{i}", PredictionService(engine=engine, selector=None)
        )
        for i in range(N_REPLICAS)
    ]
    router = ReplicaRouter(
        replicas, seed=ROUTER_SEED, max_retries=3, retry_backoff_s=0.001,
        probe_interval_s=0.5, health_kwargs={"eject_for_s": 1e6},
    )
    with faults.inject(FAULT_SPEC):
        result = routed_replay(
            router, trace, queue_limit=16, slo_s=10.0,
            max_batch=64, max_wait_s=0.002,
        )
    return router, result


def test_router_availability_under_faults(benchmark):
    """Admitted-success fraction with 1-of-4 replicas killed mid-trace."""
    router, result = benchmark.pedantic(
        _run_chaos_replay, rounds=1, iterations=1
    )

    # the scripted outage actually happened
    dead = [
        name for name, h in router.health.items() if h.state == "ejected"
    ]
    assert len(dead) == 1
    assert router.stats.failovers > 0

    # availability: every admitted request still completed successfully
    admitted = len(result.responses)
    ok = sum(1 for r in result.responses if r.status == "ok")
    assert admitted > 0
    assert result.conserved()
    availability = ok / admitted
    record_metric("serve.router_availability_under_faults", availability)
    assert availability == 1.0

    print()
    print(
        f"admitted={admitted} ok={ok} shed={len(result.shed_ids)} "
        f"failovers={router.stats.failovers} dead={dead[0]} "
        f"availability={availability:.4f}"
    )
