"""Benchmark + regeneration of the reproduction-verdict report."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_verdict(benchmark):
    """The paper-anchor audit: print the table and time the full audit."""
    result = benchmark.pedantic(
        lambda: run_experiment("verdict"), rounds=1, iterations=1
    )
    emit(result)
    assert result.data["passed"] == result.data["total"]
