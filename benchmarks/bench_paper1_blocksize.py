"""Benchmark + regeneration of Paper I Table II (block-size tuning)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_paper1_blocksize(benchmark):
    """Paper I Table II (block-size tuning): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("paper1-table2"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
