"""Benchmark + regeneration of Fig. 11 (performance-area Pareto, single VGG-16)."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_fig11_pareto(benchmark):
    """Fig. 11 (performance-area Pareto, single VGG-16): print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("fig11"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
