"""Benchmark + regeneration of the depthwise-convolution extension."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_extension_depthwise(benchmark):
    """Depthwise conv study: print the rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("extension-depthwise"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
