"""Benchmark + regeneration of the extension-tile-tradeoff study."""

from conftest import emit

from repro.experiments.cli import run_experiment


def test_extension_tile_tradeoff(benchmark):
    """extension-tile-tradeoff: print the reproduced rows and time the harness."""
    result = benchmark.pedantic(
        lambda: run_experiment("extension-tile-tradeoff"), rounds=1, iterations=1
    )
    emit(result)
    assert result.table.rows
