"""Machine-normalized metric recording for the CI perf-regression gate.

Raw wall-clock times are useless as committed baselines — CI runners vary
wildly.  The stable quantities are *ratios measured on the same machine in
the same process* (batched vs per-op speedup, warm vs cold cache speedup):
both sides see the same CPU, so the ratio cancels machine speed.

Benchmarks call :func:`record_metric` with such ratios.  When the
``BENCH_METRICS_PATH`` environment variable is set (the CI bench-smoke job
sets it), each call merges the metric into that JSON file;
``scripts/check_bench_regression.py`` then compares the file against the
committed ``benchmarks/baselines.json``.  Without the variable the call is
a no-op, so local benchmark runs are unaffected.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

ENV_VAR = "BENCH_METRICS_PATH"


def metrics_path() -> Path | None:
    """Destination JSON file, or ``None`` when recording is disabled."""
    value = os.environ.get(ENV_VAR)
    return Path(value) if value else None


def record_metric(name: str, value: float) -> None:
    """Merge ``{name: value}`` into the metrics JSON file (if enabled).

    The file is read-modify-written on every call so several pytest
    invocations (bench_kernels, then bench_timing_replay) can accumulate
    into one file.
    """
    path = metrics_path()
    if path is None:
        return
    data: dict[str, float] = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            data = {}
    data[name] = float(value)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
